//! Detection of the suspicious collusion behaviors B1–B4 (Section 4.3).
//!
//! The Overstock trace analysis (Section 3 of the paper) identifies four
//! behavior patterns that almost never occur organically:
//!
//! * **B1** — users with *long social distance* rate each other with high
//!   ratings and high frequency;
//! * **B2** — a user frequently rates a *low-reputed, socially-close* user
//!   with high ratings;
//! * **B3** — users with *few common interests* rate each other with high
//!   ratings and high frequency;
//! * **B4** — a buyer frequently rates a seller with *many common
//!   interests* with **low** ratings (competitor suppression).
//!
//! Detection is gated on rating frequency: a pair becomes suspect only when
//! its positive (`t⁺(i,j)`) or negative (`t⁻(i,j)`) rating count in the
//! current update interval exceeds `T⁺_t` / `T⁻_t` (derived from `θ·F̄`).

use serde::{Deserialize, Serialize};
use socialtrust_reputation::rating::RatingLedger;
use socialtrust_socnet::snapshot::GraphSnapshot;
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::{
    trace::names as trace_names, Counter, Histogram, SpanHandle, Telemetry,
};

use crate::config::SocialTrustConfig;
use crate::context::SocialContext;

/// Which suspicious behavior pattern a pair matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuspicionReason {
    /// B1: high-frequency positive ratings across a long social distance
    /// (`Ωc < T_cl`).
    B1DistantFrequentPositive,
    /// B2: high-frequency positive ratings to a socially-close
    /// (`Ωc > T_ch`) but low-reputed (`R < T_R`) node.
    B2CloseLowReputed,
    /// B3: high-frequency positive ratings despite few common interests
    /// (`Ωs < T_sl`).
    B3DissimilarFrequentPositive,
    /// B4: high-frequency negative ratings despite many common interests
    /// (`Ωs > T_sh`) — likely competitor suppression.
    B4SimilarFrequentNegative,
}

impl SuspicionReason {
    /// The short behavior tag (`"B1"`–`"B4"`) used in metric names and
    /// telemetry events.
    pub fn code(self) -> &'static str {
        match self {
            SuspicionReason::B1DistantFrequentPositive => "B1",
            SuspicionReason::B2CloseLowReputed => "B2",
            SuspicionReason::B3DissimilarFrequentPositive => "B3",
            SuspicionReason::B4SimilarFrequentNegative => "B4",
        }
    }
}

/// Registry-backed detector instrumentation: per-behavior trigger
/// counters, a total-suspicions counter, and the detect latency histogram.
///
/// Kept separate from [`Detector`] (which stays `Copy`) and passed into
/// [`Detector::detect_all_with_metrics`] by the caller that owns the
/// telemetry wiring (the SocialTrust decorator).
#[derive(Debug, Clone)]
pub struct DetectorMetrics {
    /// `detector_b1_triggers_total` … `detector_b4_triggers_total`,
    /// indexed by behavior (a suspicion matching several behaviors bumps
    /// each one).
    behavior_triggers: [Counter; 4],
    /// `detector_suspicions_total`: flagged rater→ratee pairs.
    suspicions: Counter,
    /// `detect_seconds`: wall time of each full [`Detector::detect_all`]
    /// pass.
    detect_seconds: Histogram,
}

impl DetectorMetrics {
    /// Registers the detector metric family on `telemetry`'s registry.
    pub fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        DetectorMetrics {
            behavior_triggers: [
                registry.counter("detector_b1_triggers_total"),
                registry.counter("detector_b2_triggers_total"),
                registry.counter("detector_b3_triggers_total"),
                registry.counter("detector_b4_triggers_total"),
            ],
            suspicions: registry.counter("detector_suspicions_total"),
            detect_seconds: registry.histogram("detect_seconds"),
        }
    }

    /// Records one completed detection pass.
    pub fn observe(&self, suspicions: &[Suspicion], elapsed_seconds: f64) {
        self.detect_seconds.observe(elapsed_seconds);
        self.suspicions.add(suspicions.len() as u64);
        for s in suspicions {
            for reason in &s.reasons {
                let idx = match reason {
                    SuspicionReason::B1DistantFrequentPositive => 0,
                    SuspicionReason::B2CloseLowReputed => 1,
                    SuspicionReason::B3DissimilarFrequentPositive => 2,
                    SuspicionReason::B4SimilarFrequentNegative => 3,
                };
                self.behavior_triggers[idx].inc();
            }
        }
    }
}

/// One flagged rater→ratee pair, with the social coefficients that
/// triggered it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suspicion {
    /// The suspected colluding rater.
    pub rater: NodeId,
    /// The node receiving the suspect ratings.
    pub ratee: NodeId,
    /// All matched behavior patterns (at least one).
    pub reasons: Vec<SuspicionReason>,
    /// Social closeness `Ωc(rater, ratee)` at detection time.
    pub omega_c: f64,
    /// Interest similarity `Ωs(rater, ratee)` at detection time.
    pub omega_s: f64,
}

/// Outcome of the interval-frequency gate for one rater→ratee pair.
#[derive(Debug, Clone, Copy)]
struct FrequencyGate {
    frequent_positive: bool,
    frequent_negative: bool,
    back_frequent_positive: bool,
}

/// The B1–B4 detector.
#[derive(Debug, Clone, Copy)]
pub struct Detector {
    config: SocialTrustConfig,
}

impl Detector {
    /// A detector with the given configuration.
    pub fn new(config: SocialTrustConfig) -> Self {
        config.validate();
        Detector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SocialTrustConfig {
        &self.config
    }

    /// Inspect one rater→ratee pair. Returns a [`Suspicion`] when the
    /// pair's interval rating frequency is high *and* its social
    /// coefficients match one of B1–B4; `None` otherwise.
    ///
    /// `ratee_reputation` is the ratee's global reputation from the
    /// previous update (used by B2's `R < T_R` test); `rater_reputation`
    /// feeds the *mutual* B2 reading from Section 4.3 (*"If t⁺(j,i) > T⁺_t,
    /// which means n_j also frequently rates n_i…"*) — when a socially-close
    /// pair rates each other frequently and **either** side is low-reputed,
    /// both directions are suspect. This is what catches the
    /// colluder→compromised-pretrusted half of a bribed pair, whose ratee
    /// is (still) high-reputed.
    pub fn inspect_pair(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        rater: NodeId,
        ratee: NodeId,
        rater_reputation: f64,
        ratee_reputation: f64,
    ) -> Option<Suspicion> {
        self.inspect_pair_with_mean(
            ctx,
            ledger,
            rater,
            ratee,
            rater_reputation,
            ratee_reputation,
            ledger.average_rating_frequency(),
        )
    }

    /// [`Detector::inspect_pair`] with the system-wide mean rating
    /// frequency `F̄` precomputed. `F̄` is a property of the whole interval,
    /// not of the pair, so [`Detector::detect_all`] computes it once and
    /// passes it to every pair inspection instead of rescanning the ledger
    /// per pair.
    #[allow(clippy::too_many_arguments)]
    fn inspect_pair_with_mean(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        rater: NodeId,
        ratee: NodeId,
        rater_reputation: f64,
        ratee_reputation: f64,
        mean_freq: f64,
    ) -> Option<Suspicion> {
        let gate = self.frequency_gate(ledger, rater, ratee, mean_freq)?;
        let omega_c = ctx.closeness(rater, ratee, self.config.closeness);
        let omega_s = ctx.similarity(rater, ratee, self.config.weighted_similarity);
        self.classify(
            rater,
            ratee,
            rater_reputation,
            ratee_reputation,
            gate,
            omega_c,
            omega_s,
        )
    }

    /// [`Detector::inspect_pair_with_mean`] serving `Ωc`/`Ωs` from a frozen
    /// [`GraphSnapshot`] instead of the live cache. Bit-for-bit identical
    /// results (the snapshot kernels reproduce the live evaluation order);
    /// used by [`Detector::detect_all`] so the whole pass reads one
    /// consistent view with no lock traffic.
    #[allow(clippy::too_many_arguments)]
    fn inspect_pair_snapshot(
        &self,
        snapshot: &GraphSnapshot,
        ledger: &RatingLedger,
        rater: NodeId,
        ratee: NodeId,
        rater_reputation: f64,
        ratee_reputation: f64,
        mean_freq: f64,
    ) -> Option<Suspicion> {
        let gate = self.frequency_gate(ledger, rater, ratee, mean_freq)?;
        let omega_c = snapshot.closeness(rater, ratee);
        let omega_s = snapshot.interest_similarity(rater, ratee, self.config.weighted_similarity);
        self.classify(
            rater,
            ratee,
            rater_reputation,
            ratee_reputation,
            gate,
            omega_c,
            omega_s,
        )
    }

    /// The rating-frequency gate shared by both inspection paths: `None`
    /// when the pair's interval traffic is unremarkable (the social
    /// coefficients are then never computed).
    fn frequency_gate(
        &self,
        ledger: &RatingLedger,
        rater: NodeId,
        ratee: NodeId,
        mean_freq: f64,
    ) -> Option<FrequencyGate> {
        let stats = ledger.interval_stats(rater, ratee);
        if stats.count() == 0 {
            return None;
        }
        let t_pos = self.config.positive_threshold(mean_freq);
        let t_neg = self.config.negative_threshold(mean_freq);

        let mut frequent_positive = stats.positive as f64 > t_pos;
        let frequent_negative = stats.negative as f64 > t_neg;
        // "Does the ratee also frequently rate the rater back?" — needed by
        // both the strictly-mutual gate and the mutual B2 reading, so the
        // reverse ledger entry is fetched exactly once.
        let back_frequent_positive =
            frequent_positive && ledger.interval_stats(ratee, rater).positive as f64 > t_pos;
        if self.config.require_mutual {
            // Strictly mutual reading: the ratee must also frequently rate
            // the rater back.
            frequent_positive = back_frequent_positive;
        }
        if !frequent_positive && !frequent_negative {
            return None;
        }
        Some(FrequencyGate {
            frequent_positive,
            frequent_negative,
            back_frequent_positive,
        })
    }

    /// B1–B4 classification of a frequency-gated pair from its social
    /// coefficients.
    #[allow(clippy::too_many_arguments)]
    fn classify(
        &self,
        rater: NodeId,
        ratee: NodeId,
        rater_reputation: f64,
        ratee_reputation: f64,
        gate: FrequencyGate,
        omega_c: f64,
        omega_s: f64,
    ) -> Option<Suspicion> {
        let FrequencyGate {
            frequent_positive,
            frequent_negative,
            back_frequent_positive,
        } = gate;
        let mut reasons = Vec::new();
        if frequent_positive {
            if omega_c < self.config.closeness_low {
                reasons.push(SuspicionReason::B1DistantFrequentPositive);
            }
            if omega_c > self.config.closeness_high {
                // Direct B2: the ratee is low-reputed. Mutual B2: the pair
                // frequently rates each other and the *rater* is the
                // low-reputed half (a colluder propping up its compromised
                // pre-trusted partner).
                if ratee_reputation < self.config.low_reputation
                    || (back_frequent_positive && rater_reputation < self.config.low_reputation)
                {
                    reasons.push(SuspicionReason::B2CloseLowReputed);
                }
            }
            if omega_s < self.config.similarity_low {
                reasons.push(SuspicionReason::B3DissimilarFrequentPositive);
            }
        }
        if frequent_negative && omega_s > self.config.similarity_high {
            reasons.push(SuspicionReason::B4SimilarFrequentNegative);
        }
        if reasons.is_empty() {
            None
        } else {
            Some(Suspicion {
                rater,
                ratee,
                reasons,
                omega_c,
                omega_s,
            })
        }
    }

    /// Inspect every pair active in the current ledger interval.
    /// `reputations` is the global reputation vector from the previous
    /// update (indexed by node).
    ///
    /// Pairs are independent, so they are inspected in parallel with rayon;
    /// the system-wide mean rating frequency `F̄` is computed once for the
    /// whole interval, and the social coefficients are served from **one**
    /// epoch-validated [`GraphSnapshot`] acquired at the start of the pass
    /// ([`SocialContext::snapshot`]): flat CSR adjacency, per-edge
    /// frequencies, bitset interest similarity, and thread-local BFS
    /// scratch for the Eq. (4) fallbacks — no lock traffic and no
    /// mid-pass epoch drift. The snapshot refreshes incrementally from the
    /// graph/tracker dirty logs, so across update intervals only the rows
    /// of actually-mutated nodes are repatched. The result is sorted by
    /// `(rater, ratee)`, so the output is deterministic regardless of the
    /// parallel schedule.
    pub fn detect_all(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        reputations: &[f64],
    ) -> Vec<Suspicion> {
        self.detect_all_with_metrics(ctx, ledger, reputations, None)
    }

    /// [`Detector::detect_all`] with optional instrumentation: when
    /// `metrics` is present, the pass's wall time lands in
    /// `detect_seconds` and the per-behavior / total-suspicion counters
    /// are bumped.
    pub fn detect_all_with_metrics(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        reputations: &[f64],
        metrics: Option<&DetectorMetrics>,
    ) -> Vec<Suspicion> {
        self.detect_all_with_observability(ctx, ledger, reputations, metrics, None)
    }

    /// [`Detector::detect_all_with_metrics`] plus decision provenance:
    /// when `span` is the live `detect_all` trace span, one
    /// `detector_verdict` child span is recorded per flagged pair,
    /// carrying the exact threshold comparisons of Section 4.3 — the
    /// interval frequencies `F⁺`/`F⁻` against `T⁺ₜ`/`T⁻ₜ` (θ·F̄ derived),
    /// the measured `Ω꜀`/`Ωₛ` against `T_cₕ`/`T_cₗ`/`T_sₕ`/`T_sₗ`, and
    /// the reputations against `T_R`.
    ///
    /// The spans are recorded *after* the parallel pass, in the sorted
    /// output order, so the trace is deterministic and the hot loop is
    /// untouched.
    pub fn detect_all_with_observability(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        reputations: &[f64],
        metrics: Option<&DetectorMetrics>,
        span: Option<&SpanHandle>,
    ) -> Vec<Suspicion> {
        let start = std::time::Instant::now();
        let out = self.detect_all_inner(ctx, ledger, reputations);
        if let Some(metrics) = metrics {
            metrics.observe(&out, start.elapsed().as_secs_f64());
        }
        if let Some(parent) = span {
            let mean_freq = ledger.average_rating_frequency();
            let t_pos = self.config.positive_threshold(mean_freq);
            let t_neg = self.config.negative_threshold(mean_freq);
            for s in &out {
                let stats = ledger.interval_stats(s.rater, s.ratee);
                let behaviors: Vec<&str> = s.reasons.iter().map(|r| r.code()).collect();
                let mut v = parent.child(trace_names::VERDICT);
                v.set_attr("rater", s.rater.index());
                v.set_attr("ratee", s.ratee.index());
                v.set_attr("behaviors", behaviors.join("+"));
                v.set_attr("f_pos", stats.positive);
                v.set_attr("f_neg", stats.negative);
                v.set_attr("t_pos", t_pos);
                v.set_attr("t_neg", t_neg);
                v.set_attr("theta", self.config.theta);
                v.set_attr("mean_freq", mean_freq);
                v.set_attr("omega_c", s.omega_c);
                v.set_attr("omega_s", s.omega_s);
                v.set_attr("t_c_high", self.config.closeness_high);
                v.set_attr("t_c_low", self.config.closeness_low);
                v.set_attr("t_s_high", self.config.similarity_high);
                v.set_attr("t_s_low", self.config.similarity_low);
                v.set_attr("t_r", self.config.low_reputation);
                v.set_attr("rater_reputation", reputations[s.rater.index()]);
                v.set_attr("ratee_reputation", reputations[s.ratee.index()]);
            }
        }
        out
    }

    fn detect_all_inner(
        &self,
        ctx: &SocialContext,
        ledger: &RatingLedger,
        reputations: &[f64],
    ) -> Vec<Suspicion> {
        use rayon::prelude::*;
        let mean_freq = ledger.average_rating_frequency();
        let snapshot = ctx.snapshot(self.config.closeness);
        let pairs: Vec<(NodeId, NodeId)> = ledger.interval_pairs().map(|(k, _)| k).collect();
        let mut out: Vec<Suspicion> = pairs
            .into_par_iter()
            .filter_map(|(rater, ratee)| {
                self.inspect_pair_snapshot(
                    &snapshot,
                    ledger,
                    rater,
                    ratee,
                    reputations[rater.index()],
                    reputations[ratee.index()],
                    mean_freq,
                )
            })
            .collect();
        // Deterministic order for reproducibility (parallel collection
        // order isn't guaranteed).
        out.sort_by_key(|s| (s.rater, s.ratee));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtrust_reputation::rating::Rating;
    use socialtrust_socnet::interest::InterestId;
    use socialtrust_socnet::relationship::Relationship;

    /// Context: nodes 0,1 socially close with shared interests (honest
    /// neighbors); nodes 2,3 socially distant with disjoint interests
    /// (typical colluders); nodes 4,5 close but low-reputed; nodes 6,7
    /// extra honest traffic sources keeping the system-average rating
    /// frequency F̄ realistic.
    fn fixture() -> SocialContext {
        let mut ctx = SocialContext::new(8, 10);
        // 0-1: adjacent, interacting, same interest.
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 5.0);
        for n in [0u32, 1] {
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(1));
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(2));
        }
        // 2, 3: no edge, disjoint interests.
        ctx.profile_mut(NodeId(2))
            .declared_mut()
            .insert(InterestId(3));
        ctx.profile_mut(NodeId(3))
            .declared_mut()
            .insert(InterestId(4));
        // 4-5: strongly connected clique pair, high interaction, shared
        // interest.
        for _ in 0..4 {
            ctx.graph_mut()
                .add_relationship(NodeId(4), NodeId(5), Relationship::friendship());
        }
        ctx.record_interaction(NodeId(4), NodeId(5), 10.0);
        for n in [4u32, 5] {
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(7));
        }
        ctx
    }

    fn flood(ledger: &mut RatingLedger, rater: u32, ratee: u32, value: f64, count: usize) {
        for _ in 0..count {
            ledger.record(&Rating::new(NodeId(rater), NodeId(ratee), value));
        }
    }

    /// Background organic traffic so F̄ stays low relative to the flood.
    fn background(ledger: &mut RatingLedger) {
        for (a, b) in [(0u32, 1u32), (1, 0), (0, 6), (6, 0), (1, 7), (7, 1)] {
            ledger.record(&Rating::new(NodeId(a), NodeId(b), 1.0));
        }
    }

    fn detector() -> Detector {
        Detector::new(SocialTrustConfig::default())
    }

    #[test]
    fn quiet_pair_is_not_suspicious() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        let s = detector().inspect_pair(&ctx, &ledger, NodeId(0), NodeId(1), 0.5, 0.5);
        assert!(s.is_none());
    }

    #[test]
    fn unrated_pair_is_not_suspicious() {
        let ctx = fixture();
        let ledger = RatingLedger::new();
        assert!(detector()
            .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
            .is_none());
    }

    #[test]
    fn b1_b3_distant_dissimilar_flood() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 2, 3, 1.0, 20);
        let s = detector()
            .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
            .expect("should be flagged");
        assert!(s
            .reasons
            .contains(&SuspicionReason::B1DistantFrequentPositive));
        assert!(s
            .reasons
            .contains(&SuspicionReason::B3DissimilarFrequentPositive));
        assert_eq!(s.omega_c, 0.0);
        assert_eq!(s.omega_s, 0.0);
    }

    #[test]
    fn b2_close_low_reputed_flood() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 4, 5, 1.0, 20);
        let s = detector()
            .inspect_pair(&ctx, &ledger, NodeId(4), NodeId(5), 0.5, 0.001)
            .expect("should be flagged");
        assert!(s.reasons.contains(&SuspicionReason::B2CloseLowReputed));
    }

    #[test]
    fn b2_not_triggered_for_reputable_ratee() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 4, 5, 1.0, 20);
        // Same flood, but the ratee has healthy reputation: no B2 (and the
        // pair shares interests and closeness, so no B1/B3 either).
        let s = detector().inspect_pair(&ctx, &ledger, NodeId(4), NodeId(5), 0.5, 0.5);
        assert!(s.is_none(), "got {s:?}");
    }

    #[test]
    fn b4_similar_negative_flood() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        // Node 0 floods its same-interest competitor 1 with negatives.
        flood(&mut ledger, 0, 1, -1.0, 20);
        let s = detector()
            .inspect_pair(&ctx, &ledger, NodeId(0), NodeId(1), 0.5, 0.5)
            .expect("should be flagged");
        assert_eq!(s.reasons, vec![SuspicionReason::B4SimilarFrequentNegative]);
    }

    #[test]
    fn negative_flood_on_dissimilar_node_is_not_b4() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 2, 3, -1.0, 20);
        // Dissimilar interests: legitimately bad experiences, not B4.
        assert!(detector()
            .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
            .is_none());
    }

    #[test]
    fn frequency_threshold_scales_with_system_traffic() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        // Every pair rates 20 times: nobody deviates from F̄ = 20.
        flood(&mut ledger, 2, 3, 1.0, 20);
        flood(&mut ledger, 0, 1, 1.0, 20);
        flood(&mut ledger, 1, 0, 1.0, 20);
        flood(&mut ledger, 4, 5, 1.0, 20);
        assert!(
            detector()
                .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
                .is_none(),
            "20 ratings is not anomalous when θ·F̄ = 40"
        );
    }

    #[test]
    fn require_mutual_suppresses_one_directional_floods() {
        let ctx = fixture();
        let cfg = SocialTrustConfig {
            require_mutual: true,
            ..SocialTrustConfig::default()
        };
        let det = Detector::new(cfg);
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 2, 3, 1.0, 20);
        assert!(det
            .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
            .is_none());
        // Once the flood is mutual, it is flagged again.
        flood(&mut ledger, 3, 2, 1.0, 20);
        assert!(det
            .inspect_pair(&ctx, &ledger, NodeId(2), NodeId(3), 0.5, 0.5)
            .is_some());
    }

    #[test]
    fn detect_all_is_sorted_and_complete() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 2, 3, 1.0, 20);
        flood(&mut ledger, 4, 5, 1.0, 20);
        let reputations = vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.0, 0.2, 0.2];
        let all = detector().detect_all(&ctx, &ledger, &reputations);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].rater, NodeId(2));
        assert_eq!(all[1].rater, NodeId(4));
    }

    #[test]
    fn metrics_count_behavior_triggers_and_latency() {
        let ctx = fixture();
        let mut ledger = RatingLedger::new();
        background(&mut ledger);
        flood(&mut ledger, 2, 3, 1.0, 20); // B1 + B3
        flood(&mut ledger, 4, 5, 1.0, 20); // B2
        let reputations = vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.0, 0.2, 0.2];

        let telemetry = Telemetry::new();
        let metrics = DetectorMetrics::new(&telemetry);
        let all = detector().detect_all_with_metrics(&ctx, &ledger, &reputations, Some(&metrics));
        // Identical output to the uninstrumented pass.
        assert_eq!(all, detector().detect_all(&ctx, &ledger, &reputations));

        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("detector_suspicions_total"), 2);
        assert_eq!(snap.counter("detector_b1_triggers_total"), 1);
        assert_eq!(snap.counter("detector_b2_triggers_total"), 1);
        assert_eq!(snap.counter("detector_b3_triggers_total"), 1);
        assert_eq!(snap.counter("detector_b4_triggers_total"), 0);
        assert_eq!(snap.histogram("detect_seconds").unwrap().count, 1);
    }

    #[test]
    fn behavior_codes_are_stable() {
        assert_eq!(SuspicionReason::B1DistantFrequentPositive.code(), "B1");
        assert_eq!(SuspicionReason::B2CloseLowReputed.code(), "B2");
        assert_eq!(SuspicionReason::B3DissimilarFrequentPositive.code(), "B3");
        assert_eq!(SuspicionReason::B4SimilarFrequentNegative.code(), "B4");
    }
}
