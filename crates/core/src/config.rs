//! SocialTrust configuration: all thresholds of Section 4.3 plus the
//! closeness/similarity measurement modes of Section 4.4.

use serde::{Deserialize, Serialize};
use socialtrust_socnet::closeness::ClosenessConfig;

use crate::stats::OmegaStats;

/// Which Gaussian filter is applied to suspected ratings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdjustmentMode {
    /// Eq. (6): closeness-only filter (ablation).
    ClosenessOnly,
    /// Eq. (8): similarity-only filter (ablation).
    SimilarityOnly,
    /// Eq. (9): the combined two-dimensional filter (the full mechanism).
    Combined,
}

/// How the per-rater Gaussian baselines (`Ω̄`, width) are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BaselineMode {
    /// `Ω̄_i`, `maxΩ_i`, `minΩ_i` computed over the nodes the rater has
    /// rated (the default formulation of Eqs. (6)/(8)).
    PerRater,
    /// Replace per-rater statistics with empirical system-wide statistics
    /// of transaction pairs ("*we also can replace Ω̄ with the average Ω of
    /// a pair of transaction peers in the system based on the empirical
    /// result*").
    Empirical,
}

/// Full SocialTrust configuration.
///
/// Defaults correspond to the paper's experimental setup where stated, and
/// to conservative values otherwise. All thresholds are documented with the
/// behavior (B1–B4) they gate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SocialTrustConfig {
    /// The Gaussian function parameter `α` (`a` in Eq. (5)); the paper's
    /// experiments use `1.0`.
    pub alpha: f64,
    /// Scale applied to the Gaussian width `|maxΩ − minΩ|` before use.
    /// The paper's `c` is the full range of observed coefficients; a σ that
    /// large makes the filter nearly flat (extreme values deviate by ≤ 1σ).
    /// The default `0.125` (σ = range/8) is calibrated so that a pair at
    /// the *opposite* extreme of the honest range — e.g. zero interest
    /// similarity against the Overstock mean of 0.423 — is damped to the
    /// sub-1% weights needed to beat EigenTrust's row normalization
    /// (a damped collusion edge must shrink relative to the rater's
    /// organic edges, not just in absolute value). `0.25` (the classic
    /// range rule `range ≈ 4σ`) and the literal `1.0` are explored in the
    /// `ablation_thresholds` experiment.
    pub width_scale: f64,
    /// Frequency scaling factor `θ > 1`: a pair's rating frequency is
    /// "high" when it exceeds `θ·F̄`, `F̄` being the system-average rating
    /// frequency in the interval.
    pub theta: f64,
    /// Absolute floor for the positive-rating frequency threshold `T⁺_t`.
    /// The effective threshold is `max(θ·F̄, positive_frequency_floor)` so
    /// that a near-idle system does not flag everyone.
    pub positive_frequency_floor: f64,
    /// Absolute floor for the negative-rating frequency threshold `T⁻_t`.
    pub negative_frequency_floor: f64,
    /// Low-reputation threshold `T_R` (B2: frequent positive ratings to a
    /// low-reputed, socially-close node). The paper's simulator uses `0.01`.
    pub low_reputation: f64,
    /// High-closeness threshold `T_cₕ` (B2), as a quantile-free absolute
    /// value on `Ωc`.
    pub closeness_high: f64,
    /// Low-closeness threshold `T_cₗ` (B1).
    pub closeness_low: f64,
    /// High-similarity threshold `T_sₕ` (B4).
    pub similarity_high: f64,
    /// Low-similarity threshold `T_sₗ` (B3).
    pub similarity_low: f64,
    /// Which Gaussian filter (Eq. (6), (8), or (9)) adjusts suspected
    /// ratings.
    pub adjustment_mode: AdjustmentMode,
    /// Where Gaussian baselines come from.
    pub baseline_mode: BaselineMode,
    /// Empirical closeness statistics used in [`BaselineMode::Empirical`]
    /// or as fallback when a rater has no history.
    pub empirical_closeness: OmegaStats,
    /// Empirical similarity statistics (the paper reports Overstock's
    /// 0.423 / 1 / 0.13 average/max/min).
    pub empirical_similarity: OmegaStats,
    /// Closeness measurement mode (plain Eq. (2) vs weighted Eq. (10)).
    pub closeness: ClosenessConfig,
    /// Use the request-weighted interest similarity of Eq. (11) instead of
    /// the declared-profile overlap of Eq. (7). Turns on the Section 4.4
    /// falsification resilience.
    pub weighted_similarity: bool,
    /// Suspicion hysteresis: once a pair is flagged, keep adjusting its
    /// ratings for this many further update intervals even if the
    /// detection conditions momentarily stop matching. Prevents boundary
    /// oscillation: B2 switches off the instant a boosted ratee's
    /// reputation crosses `T_R`, and without memory colluders can surf
    /// that edge (boost freely while above, get damped back below, repeat)
    /// and ratchet accumulated trust upward. `0` disables the memory.
    pub suspicion_memory: u64,
    /// Require the ratee to *also* frequently rate the rater back before
    /// applying B1–B3 (the strictly mutual reading of Section 4.3).
    ///
    /// The default is `false`: the one-directional reading is required for
    /// SocialTrust to counter MCM, where boosted nodes never rate back —
    /// and the paper's Figures 11–12 show that it does.
    pub require_mutual: bool,
}

impl Default for SocialTrustConfig {
    fn default() -> Self {
        SocialTrustConfig {
            alpha: 1.0,
            width_scale: 0.125,
            theta: 2.0,
            positive_frequency_floor: 5.0,
            negative_frequency_floor: 5.0,
            low_reputation: 0.01,
            closeness_high: 0.5,
            closeness_low: 0.05,
            similarity_high: 0.7,
            similarity_low: 0.2,
            adjustment_mode: AdjustmentMode::Combined,
            // Empirical (system-wide) baselines by default, per the paper's
            // own alternative ("we also can replace Ω̄ with the average Ω of
            // a pair of transaction peers in the system based on the
            // empirical result"). Per-rater statistics are available for
            // ablation but are easy for colluders to pollute: the rater's
            // own clique edges inflate its closeness spread, flattening the
            // Gaussian exactly where it should bite.
            baseline_mode: BaselineMode::Empirical,
            empirical_closeness: OmegaStats::new(0.3, 1.0, 0.0),
            empirical_similarity: OmegaStats::overstock_similarity(),
            closeness: ClosenessConfig::default(),
            weighted_similarity: false,
            suspicion_memory: 3,
            require_mutual: false,
        }
    }
}

impl SocialTrustConfig {
    /// The Section 4.4 hardened configuration: relationship-weighted
    /// closeness (Eq. (10), `λ = 0.8`) and request-weighted similarity
    /// (Eq. (11)). Use when colluders may falsify profiles.
    pub fn falsification_resilient() -> Self {
        SocialTrustConfig {
            closeness: ClosenessConfig::weighted(0.8),
            weighted_similarity: true,
            ..SocialTrustConfig::default()
        }
    }

    /// Calibrate the empirical Gaussian baselines from observed
    /// transaction pairs — the paper's own procedure: *"we also can replace
    /// Ω̄ with the average Ω of a pair of transaction peers in the system
    /// based on the empirical result"* (its Overstock numbers: similarity
    /// mean 0.423, max 1, min 0.13).
    ///
    /// Feed it the honest transaction pairs observed in a trace (or an
    /// early, collusion-light measurement window); pairs are measured with
    /// this config's closeness/similarity modes. Returns how many pairs
    /// were used. No-op (returns 0) when `pairs` is empty.
    pub fn calibrate_empirical(
        &mut self,
        ctx: &crate::context::SocialContext,
        pairs: &[(socialtrust_socnet::NodeId, socialtrust_socnet::NodeId)],
    ) -> usize {
        if pairs.is_empty() {
            return 0;
        }
        let closeness: Vec<f64> = pairs
            .iter()
            .map(|&(a, b)| ctx.closeness(a, b, self.closeness))
            .collect();
        let similarity: Vec<f64> = pairs
            .iter()
            .map(|&(a, b)| ctx.similarity(a, b, self.weighted_similarity))
            .collect();
        if let Some(stats) = OmegaStats::from_values(&closeness) {
            self.empirical_closeness = stats;
        }
        if let Some(stats) = OmegaStats::from_values(&similarity) {
            self.empirical_similarity = stats;
        }
        pairs.len()
    }

    /// The effective positive frequency threshold `T⁺_t` for an interval
    /// with average rating frequency `mean_frequency` (`F̄`).
    pub fn positive_threshold(&self, mean_frequency: f64) -> f64 {
        (self.theta * mean_frequency).max(self.positive_frequency_floor)
    }

    /// The effective negative frequency threshold `T⁻_t`.
    pub fn negative_threshold(&self, mean_frequency: f64) -> f64 {
        (self.theta * mean_frequency).max(self.negative_frequency_floor)
    }

    /// Validate internal consistency. Call after hand-building configs.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.alpha > 0.0, "α must be positive");
        assert!(
            self.width_scale > 0.0 && self.width_scale <= 1.0,
            "width scale must be in (0, 1]"
        );
        assert!(self.theta > 1.0, "θ must exceed 1");
        assert!(
            self.closeness_low <= self.closeness_high,
            "T_cl must not exceed T_ch"
        );
        assert!(
            self.similarity_low <= self.similarity_high,
            "T_sl must not exceed T_sh"
        );
        assert!(
            (0.0..=1.0).contains(&self.low_reputation),
            "T_R must be in [0,1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SocialTrustConfig::default().validate();
    }

    #[test]
    fn resilient_config_enables_weighted_modes() {
        let c = SocialTrustConfig::falsification_resilient();
        c.validate();
        assert!(c.weighted_similarity);
        assert!(c.closeness.weighted_relationships);
    }

    #[test]
    fn thresholds_scale_with_mean_frequency() {
        let c = SocialTrustConfig::default();
        // θ·F̄ dominates when traffic is heavy…
        assert_eq!(c.positive_threshold(10.0), 20.0);
        // …and the floor protects a quiet system.
        assert_eq!(c.positive_threshold(0.1), c.positive_frequency_floor);
        assert_eq!(c.negative_threshold(4.0), 8.0);
    }

    #[test]
    fn calibrate_empirical_from_observed_pairs() {
        use crate::context::SocialContext;
        use socialtrust_socnet::interest::InterestId;
        use socialtrust_socnet::relationship::Relationship;
        use socialtrust_socnet::NodeId;

        let mut ctx = SocialContext::new(4, 8);
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 4.0);
        for n in [0u32, 1, 2] {
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(1));
        }
        let mut cfg = SocialTrustConfig::default();
        let used = cfg.calibrate_empirical(&ctx, &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))]);
        assert_eq!(used, 2);
        // Closeness observations: Ωc(0,1)=1 (adjacent), Ωc(0,2)=0.
        assert!((cfg.empirical_closeness.mean - 0.5).abs() < 1e-9);
        assert_eq!(cfg.empirical_closeness.max, 1.0);
        assert_eq!(cfg.empirical_closeness.min, 0.0);
        // Similarity observations: 1.0 for both pairs (shared interest 1).
        assert!((cfg.empirical_similarity.mean - 1.0).abs() < 1e-9);
        cfg.validate();
        // Empty input is a no-op.
        let before = cfg.empirical_closeness;
        assert_eq!(cfg.calibrate_empirical(&ctx, &[]), 0);
        assert_eq!(cfg.empirical_closeness, before);
    }

    #[test]
    #[should_panic(expected = "θ must exceed 1")]
    fn validate_rejects_bad_theta() {
        let c = SocialTrustConfig {
            theta: 0.5,
            ..SocialTrustConfig::default()
        };
        c.validate();
    }
}
