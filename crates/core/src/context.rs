//! The social context: everything SocialTrust knows about the social side
//! of the network, bundled for concurrent access.
//!
//! [`SocialContext`] owns the social graph, the interaction tracker and the
//! per-node interest profiles; it answers the two questions the detector
//! and the Gaussian filter ask: *how close are i and j* (`Ωc`) and *how
//! similar are their interests* (`Ωs`).
//!
//! [`SharedSocialContext`] is an `Arc<RwLock<…>>` handle so that the
//! simulator (which mutates interactions and request profiles during a
//! cycle) and the [`crate::decorator::WithSocialTrust`] layer (which reads
//! them at the end of the cycle) can share one context. `parking_lot`'s
//! lock is used per the workspace's concurrency guidelines.

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use socialtrust_socnet::cache::{CacheStats, SocialCoefficientCache};
use socialtrust_socnet::closeness::ClosenessConfig;
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::interest::{
    similarity, weighted_similarity, InterestId, InterestProfile, InterestSet,
};
use socialtrust_socnet::snapshot::{GraphSnapshot, SnapshotStore};
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::Telemetry;

/// The bundled social state of the network.
///
/// Closeness queries are served through an internal
/// [`SocialCoefficientCache`]: the graph and the interaction tracker carry
/// epoch + per-node dirty logs that every mutator feeds, so the first
/// query after a mutation drains the accumulated dirty set and evicts only
/// the touched neighborhood — entries for quiet regions of the network
/// stay warm across cycles, and repeat queries on an unchanged context are
/// O(1). Cloning a context starts with an empty cache (memoization is
/// semantically transparent).
#[derive(Debug, Clone)]
pub struct SocialContext {
    graph: SocialGraph,
    interactions: InteractionTracker,
    profiles: Vec<InterestProfile>,
    total_interests: u16,
    cache: SocialCoefficientCache,
    /// Holder of the per-cycle CSR snapshot (see [`SocialContext::snapshot`]).
    /// Cloning yields an empty store, like the cache.
    snapshots: SnapshotStore,
    /// Bumped on every interest-profile mutation; the profiles carry no
    /// dirty log of their own, so this version is what stamps snapshots.
    profiles_version: u64,
}

impl SocialContext {
    /// An empty context over `n` nodes and `total_interests` interest
    /// categories. Nodes start with no relationships, no interactions and
    /// empty interest profiles.
    pub fn new(n: usize, total_interests: u16) -> Self {
        SocialContext {
            graph: SocialGraph::new(n),
            interactions: InteractionTracker::new(n),
            profiles: vec![InterestProfile::new(InterestSet::new()); n],
            total_interests,
            cache: SocialCoefficientCache::new(),
            snapshots: SnapshotStore::new(),
            profiles_version: 0,
        }
    }

    /// Build a context from pre-constructed parts (e.g. the simulator's
    /// generated social network).
    ///
    /// # Panics
    /// Panics if the parts disagree on the node count.
    pub fn from_parts(
        graph: SocialGraph,
        interactions: InteractionTracker,
        profiles: Vec<InterestProfile>,
        total_interests: u16,
    ) -> Self {
        assert_eq!(graph.node_count(), profiles.len(), "node count mismatch");
        assert_eq!(
            graph.node_count(),
            interactions.node_count(),
            "node count mismatch"
        );
        SocialContext {
            graph,
            interactions,
            profiles,
            total_interests,
            cache: SocialCoefficientCache::new(),
            snapshots: SnapshotStore::new(),
            profiles_version: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of interest categories in the system.
    pub fn total_interests(&self) -> u16 {
        self.total_interests
    }

    /// The social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Mutable access to the social graph (e.g. for relationship
    /// falsification attacks).
    pub fn graph_mut(&mut self) -> &mut SocialGraph {
        &mut self.graph
    }

    /// The interaction tracker.
    pub fn interactions(&self) -> &InteractionTracker {
        &self.interactions
    }

    /// Mutable access to the interaction tracker (e.g. for bulk-loading a
    /// pre-built tracker in benches and tests). The tracker's dirty log
    /// keeps the coefficient cache coherent across such edits.
    pub fn interactions_mut(&mut self) -> &mut InteractionTracker {
        &mut self.interactions
    }

    /// The interest profile of `node`.
    pub fn profile(&self, node: NodeId) -> &InterestProfile {
        &self.profiles[node.index()]
    }

    /// Mutable interest profile (e.g. for declaring/deleting interests).
    /// Conservatively bumps the profiles version, so the next
    /// [`SocialContext::snapshot`] call repatches its interest tables.
    pub fn profile_mut(&mut self, node: NodeId) -> &mut InterestProfile {
        self.profiles_version += 1;
        &mut self.profiles[node.index()]
    }

    /// Record one resource request `from → to` in category `interest`.
    /// Updates both the interaction frequency `f(from,to)` and `from`'s
    /// request-weighted interest profile.
    pub fn record_request(&mut self, from: NodeId, to: NodeId, interest: InterestId) {
        self.interactions.record(from, to, 1.0);
        self.profiles[from.index()].record_requests(interest, 1);
        self.profiles_version += 1;
    }

    /// Record a bare social interaction without an interest annotation.
    pub fn record_interaction(&mut self, from: NodeId, to: NodeId, amount: f64) {
        self.interactions.record(from, to, amount);
    }

    /// Social closeness `Ωc(i,j)` under the given closeness configuration.
    ///
    /// Served through the internal [`SocialCoefficientCache`]; equal
    /// bit-for-bit to a fresh
    /// [`ClosenessModel`](socialtrust_socnet::closeness::ClosenessModel)
    /// computation.
    pub fn closeness(&self, i: NodeId, j: NodeId, config: ClosenessConfig) -> f64 {
        self.cache
            .closeness(&self.graph, &self.interactions, config, i, j)
    }

    /// Cached bulk closeness for many `(rater, ratee)` pairs, computed in
    /// parallel. Results are in input order.
    pub fn closeness_for_pairs(
        &self,
        pairs: &[(NodeId, NodeId)],
        config: ClosenessConfig,
    ) -> Vec<f64> {
        self.cache
            .closeness_for_pairs(&self.graph, &self.interactions, config, pairs)
    }

    /// The internal social-coefficient cache (read access, for diagnostics
    /// and tests).
    pub fn coefficient_cache(&self) -> &SocialCoefficientCache {
        &self.cache
    }

    /// Cumulative hit/miss/eviction counters of the internal coefficient
    /// cache, for end-of-run observability (the sim engine reports these
    /// per run and the bench binaries print them). A point-in-time
    /// snapshot — diff two with [`CacheStats::delta`] for per-cycle
    /// readings.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Re-homes the coefficient cache's counters onto `telemetry`'s
    /// registry (`cache_hits_total` / `cache_misses_total` /
    /// `cache_evictions_total`) and routes its eviction-storm events to
    /// the bundle's sink. Idempotent; accumulated counts are preserved.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.cache.attach_telemetry(telemetry);
        self.snapshots.attach_telemetry(telemetry);
    }

    /// The current epoch-validated CSR snapshot of this context for
    /// `config` (see [`GraphSnapshot`]). Rebuilt or row-patched on demand
    /// from the dirty logs; repeated calls on an unchanged context return
    /// the same `Arc`. The detector and the social-trust decorator acquire
    /// one snapshot per cycle and serve every read of that cycle from it.
    pub fn snapshot(&self, config: ClosenessConfig) -> Arc<GraphSnapshot> {
        self.snapshots.snapshot(
            &self.graph,
            &self.interactions,
            &self.profiles,
            self.profiles_version,
            config,
        )
    }

    /// `(full rebuilds, incremental patches)` the snapshot store has
    /// performed, for diagnostics and tests.
    pub fn snapshot_stats(&self) -> (u64, u64) {
        self.snapshots.stats()
    }

    /// Interest similarity `Ωs(i,j)`: request-weighted Eq. (11) when
    /// `weighted` is set, otherwise the declared-profile overlap Eq. (7).
    pub fn similarity(&self, i: NodeId, j: NodeId, weighted: bool) -> f64 {
        let (pi, pj) = (&self.profiles[i.index()], &self.profiles[j.index()]);
        if weighted {
            weighted_similarity(pi, pj)
        } else {
            similarity(pi.declared(), pj.declared())
        }
    }
}

/// A cloneable, thread-safe handle to a [`SocialContext`].
#[derive(Debug, Clone)]
pub struct SharedSocialContext {
    inner: Arc<RwLock<SocialContext>>,
}

impl SharedSocialContext {
    /// Wrap a context in a shared handle.
    pub fn new(ctx: SocialContext) -> Self {
        SharedSocialContext {
            inner: Arc::new(RwLock::new(ctx)),
        }
    }

    /// Acquire a read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, SocialContext> {
        self.inner.read()
    }

    /// Acquire a write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, SocialContext> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtrust_socnet::relationship::Relationship;

    #[test]
    fn new_context_is_empty() {
        let ctx = SocialContext::new(3, 20);
        assert_eq!(ctx.node_count(), 3);
        assert_eq!(ctx.total_interests(), 20);
        assert_eq!(ctx.similarity(NodeId(0), NodeId(1), false), 0.0);
        assert_eq!(
            ctx.closeness(NodeId(0), NodeId(1), ClosenessConfig::default()),
            0.0
        );
    }

    #[test]
    fn record_request_updates_both_signals() {
        let mut ctx = SocialContext::new(2, 4);
        ctx.record_request(NodeId(0), NodeId(1), InterestId(2));
        assert_eq!(ctx.interactions().frequency(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(ctx.profile(NodeId(0)).total_requests(), 1);
        assert_eq!(ctx.profile(NodeId(0)).request_weight(InterestId(2)), 1.0);
    }

    #[test]
    fn closeness_flows_through_graph_and_interactions() {
        let mut ctx = SocialContext::new(2, 4);
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 3.0);
        let c = ctx.closeness(NodeId(0), NodeId(1), ClosenessConfig::default());
        assert!((c - 1.0).abs() < 1e-12, "1 rel · 3/3 interactions = 1");
    }

    #[test]
    fn similarity_modes_differ_under_falsification() {
        let mut ctx = SocialContext::new(2, 4);
        ctx.profile_mut(NodeId(0))
            .declared_mut()
            .insert(InterestId(1));
        ctx.profile_mut(NodeId(1))
            .declared_mut()
            .insert(InterestId(1));
        // Declared profiles overlap fully…
        assert_eq!(ctx.similarity(NodeId(0), NodeId(1), false), 1.0);
        // …but nobody ever requested category 1, so Eq. (11) sees nothing.
        assert_eq!(ctx.similarity(NodeId(0), NodeId(1), true), 0.0);
    }

    #[test]
    fn cached_closeness_refreshes_after_mutation_through_context() {
        let mut ctx = SocialContext::new(3, 4);
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 3.0);
        let cfg = ClosenessConfig::default();
        assert!((ctx.closeness(NodeId(0), NodeId(1), cfg) - 1.0).abs() < 1e-12);
        assert!(!ctx.coefficient_cache().is_empty());
        // Mutating through graph_mut() bumps the graph generation, so the
        // next query sees m(0,1) = 2.
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        assert!((ctx.closeness(NodeId(0), NodeId(1), cfg) - 2.0).abs() < 1e-12);
        // Mutating interactions through record_request also invalidates:
        // f(0,2) = 1 with an 0-2 edge shifts the denominator.
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(2), Relationship::friendship());
        ctx.record_request(NodeId(0), NodeId(2), InterestId(1));
        let c = ctx.closeness(NodeId(0), NodeId(1), cfg);
        assert!((c - 2.0 * 3.0 / 4.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn bulk_closeness_matches_singles_and_refreshes() {
        let mut ctx = SocialContext::new(4, 4);
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.graph_mut()
            .add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 2.0);
        ctx.record_interaction(NodeId(1), NodeId(2), 5.0);
        let cfg = ClosenessConfig::default();
        let pairs = [
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(2)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(3)),
        ];
        let bulk = ctx.closeness_for_pairs(&pairs, cfg);
        for (idx, &(i, j)) in pairs.iter().enumerate() {
            assert_eq!(bulk[idx].to_bits(), ctx.closeness(i, j, cfg).to_bits());
        }
        ctx.record_interaction(NodeId(1), NodeId(0), 1.0);
        let bulk2 = ctx.closeness_for_pairs(&pairs, cfg);
        assert_ne!(
            bulk, bulk2,
            "new interaction must show through the bulk path"
        );
        for (idx, &(i, j)) in pairs.iter().enumerate() {
            assert_eq!(bulk2[idx].to_bits(), ctx.closeness(i, j, cfg).to_bits());
        }
    }

    #[test]
    fn snapshot_tracks_context_mutations() {
        let mut ctx = SocialContext::new(3, 4);
        ctx.graph_mut()
            .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        ctx.record_interaction(NodeId(0), NodeId(1), 3.0);
        let cfg = ClosenessConfig::default();
        let snap = ctx.snapshot(cfg);
        assert_eq!(
            snap.closeness(NodeId(0), NodeId(1)).to_bits(),
            ctx.closeness(NodeId(0), NodeId(1), cfg).to_bits()
        );
        // Unchanged context → same Arc.
        assert!(Arc::ptr_eq(&snap, &ctx.snapshot(cfg)));
        // Interaction dirt is patched in, not rebuilt.
        ctx.record_interaction(NodeId(0), NodeId(1), 2.0);
        let snap2 = ctx.snapshot(cfg);
        assert_eq!(
            snap2.closeness(NodeId(0), NodeId(1)).to_bits(),
            ctx.closeness(NodeId(0), NodeId(1), cfg).to_bits()
        );
        assert_eq!(ctx.snapshot_stats(), (1, 1));
        // Profile mutations show up through the similarity kernels.
        ctx.profile_mut(NodeId(0))
            .declared_mut()
            .insert(InterestId(1));
        ctx.profile_mut(NodeId(1))
            .declared_mut()
            .insert(InterestId(1));
        let snap3 = ctx.snapshot(cfg);
        assert_eq!(
            snap3
                .interest_similarity(NodeId(0), NodeId(1), false)
                .to_bits(),
            ctx.similarity(NodeId(0), NodeId(1), false).to_bits()
        );
    }

    #[test]
    fn shared_context_allows_concurrent_reads() {
        let shared = SharedSocialContext::new(SocialContext::new(2, 4));
        let g1 = shared.read();
        let g2 = shared.read();
        assert_eq!(g1.node_count(), g2.node_count());
        drop((g1, g2));
        shared.write().record_interaction(NodeId(0), NodeId(1), 1.0);
        assert_eq!(
            shared.read().interactions().frequency(NodeId(0), NodeId(1)),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn from_parts_checks_consistency() {
        SocialContext::from_parts(
            SocialGraph::new(3),
            InteractionTracker::new(3),
            vec![InterestProfile::new(InterestSet::new()); 2],
            4,
        );
    }
}
