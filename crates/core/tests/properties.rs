//! Property-based tests for the SocialTrust core.

use proptest::prelude::*;
use socialtrust_core::config::{AdjustmentMode, SocialTrustConfig};
use socialtrust_core::context::{SharedSocialContext, SocialContext};
use socialtrust_core::decorator::WithSocialTrust;
use socialtrust_core::gaussian::{adjustment_weight, combined_weight, gaussian};
use socialtrust_core::stats::OmegaStats;
use socialtrust_reputation::prelude::*;
use socialtrust_socnet::NodeId;

fn stats_strategy() -> impl Strategy<Value = OmegaStats> {
    (0.0f64..2.0, 0.0f64..2.0, 0.0f64..2.0).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        OmegaStats::new((v[0] + v[1] + v[2]) / 3.0, v[2], v[0])
    })
}

proptest! {
    #[test]
    fn gaussian_bounded_by_a(x in -5.0f64..5.0, b in -2.0f64..2.0, c in 0.0f64..3.0, a in 0.01f64..3.0) {
        let v = gaussian(x, a, b, c);
        prop_assert!((0.0..=a + 1e-12).contains(&v));
        prop_assert!(v.is_finite());
    }

    #[test]
    fn gaussian_maximal_at_center(b in -2.0f64..2.0, c in 0.01f64..3.0, dx in -3.0f64..3.0) {
        let at_center = gaussian(b, 1.0, b, c);
        let elsewhere = gaussian(b + dx, 1.0, b, c);
        prop_assert!(elsewhere <= at_center + 1e-12);
    }

    #[test]
    fn adjustment_weight_never_amplifies(omega in -1.0f64..5.0, stats in stats_strategy(), alpha in 0.1f64..1.0) {
        let w = adjustment_weight(omega, &stats, alpha);
        prop_assert!((0.0..=alpha + 1e-12).contains(&w));
    }

    #[test]
    fn combined_weight_bounded_and_below_each_component(
        oc in 0.0f64..3.0,
        os in 0.0f64..1.0,
        sc in stats_strategy(),
        ss in stats_strategy(),
    ) {
        let w = combined_weight(oc, &sc, os, &ss, 1.0);
        prop_assert!((0.0..=1.0).contains(&w));
        // e^{-(x+y)} ≤ min(e^{-x}, e^{-y}): the combined filter is at least
        // as strict as either single-dimension filter.
        let wc = adjustment_weight(oc, &sc, 1.0);
        let ws = adjustment_weight(os, &ss, 1.0);
        prop_assert!(w <= wc.min(ws) + 1e-12);
    }

    /// Whatever the rating pattern, the decorator must (a) never raise the
    /// magnitude of any rating, (b) keep the inner system's reputation
    /// vector a valid distribution.
    #[test]
    fn decorator_preserves_reputation_invariants(
        flood in 0usize..60,
        organic in proptest::collection::vec((0u32..8, 0u32..8), 0..25),
        mode_idx in 0usize..3,
    ) {
        let mode = [AdjustmentMode::ClosenessOnly, AdjustmentMode::SimilarityOnly, AdjustmentMode::Combined][mode_idx];
        let cfg = SocialTrustConfig { adjustment_mode: mode, ..SocialTrustConfig::default() };
        let ctx = SharedSocialContext::new(SocialContext::new(8, 10));
        let mut sys = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            cfg,
        );
        for (a, b) in organic {
            if a != b {
                sys.record(Rating::new(NodeId(a), NodeId(b), 1.0));
            }
        }
        for _ in 0..flood {
            sys.record(Rating::new(NodeId(6), NodeId(7), 1.0));
        }
        sys.end_cycle();
        let reps = sys.reputations();
        prop_assert!(reps.iter().all(|&v| v >= -1e-12 && v.is_finite()));
        let sum: f64 = reps.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        for &(_, w) in sys.last_weights() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&w));
        }
    }

    /// With no suspicious pairs, the decorator must be a transparent
    /// pass-through for any inner system.
    #[test]
    fn decorator_transparent_on_light_traffic(
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 0..10),
    ) {
        let ctx = SharedSocialContext::new(SocialContext::new(6, 10));
        let mut guarded = WithSocialTrust::new(EBayModel::new(6), ctx, SocialTrustConfig::default());
        let mut plain = EBayModel::new(6);
        // Each pair rates at most a couple of times: under every floor.
        for (a, b) in pairs {
            if a != b {
                guarded.record(Rating::new(NodeId(a), NodeId(b), 1.0));
                plain.record(Rating::new(NodeId(a), NodeId(b), 1.0));
            }
        }
        guarded.end_cycle();
        plain.end_cycle();
        prop_assert_eq!(guarded.reputations(), plain.reputations());
    }

    /// The context's cached closeness/similarity must agree bit-for-bit
    /// with direct (uncached) computation, including after mutations that
    /// invalidate the coefficient cache mid-stream.
    #[test]
    fn context_cache_agrees_with_direct_computation(
        edges in proptest::collection::vec((0u32..8, 0u32..8), 1..20),
        interactions in proptest::collection::vec((0u32..8, 0u32..8, 1u32..10), 1..20),
        extra in (0u32..8, 0u32..8),
    ) {
        use socialtrust_socnet::closeness::{ClosenessConfig, ClosenessModel};
        use socialtrust_socnet::interest::similarity;
        use socialtrust_socnet::relationship::Relationship;

        let mut ctx = SocialContext::new(8, 10);
        for &(a, b) in &edges {
            if a != b {
                ctx.graph_mut().add_relationship(NodeId(a), NodeId(b), Relationship::friendship());
            }
        }
        for &(a, b, f) in &interactions {
            if a != b {
                ctx.record_interaction(NodeId(a), NodeId(b), f as f64);
            }
        }
        let config = ClosenessConfig::default();
        let check = |ctx: &SocialContext| -> Result<(), TestCaseError> {
            let model = ClosenessModel::new(ctx.graph(), ctx.interactions(), config);
            for i in 0..8u32 {
                for j in 0..8u32 {
                    let (a, b) = (NodeId(i), NodeId(j));
                    prop_assert_eq!(
                        ctx.closeness(a, b, config).to_bits(),
                        model.closeness(a, b).to_bits()
                    );
                    prop_assert_eq!(
                        ctx.similarity(a, b, false).to_bits(),
                        similarity(ctx.profile(a).declared(), ctx.profile(b).declared()).to_bits()
                    );
                }
            }
            Ok(())
        };
        check(&ctx)?;
        // Mutate through the context and re-check: the cache must refresh.
        let (a, b) = (NodeId(extra.0), NodeId(extra.1));
        if a != b {
            ctx.graph_mut().add_relationship(a, b, Relationship::kinship());
            ctx.record_interaction(a, b, 3.0);
        }
        check(&ctx)?;
    }
}
