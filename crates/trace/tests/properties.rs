//! Property-based tests for the trace substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust_socnet::NodeId;
use socialtrust_trace::analysis::{correlation, TraceAnalysis};
use socialtrust_trace::crawler::crawl;
use socialtrust_trace::generator::{generate, TraceConfig};
use socialtrust_trace::io::{
    export_platform, import_platform, read_transactions_csv, write_transactions_csv,
};

fn tiny_config(users: usize, txs: usize) -> TraceConfig {
    TraceConfig {
        users,
        transactions: txs,
        ..TraceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn correlation_is_bounded_and_symmetric(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50)
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let c = correlation(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "C = {}", c);
        prop_assert!((c - correlation(&y, &x)).abs() < 1e-9);
    }

    #[test]
    fn correlation_invariant_under_affine_transform(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..30),
        a in 0.1f64..5.0,
        b in -10.0f64..10.0,
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let scaled: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let c1 = correlation(&x, &y);
        let c2 = correlation(&scaled, &y);
        prop_assert!((c1 - c2).abs() < 1e-6, "{} vs {}", c1, c2);
    }

    #[test]
    fn generated_traces_satisfy_model_invariants(seed in 0u64..30) {
        let cfg = tiny_config(120, 1500);
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(p.transactions().len(), cfg.transactions);
        let mut rating_sum = 0i64;
        for t in p.transactions() {
            prop_assert!(t.buyer != t.seller);
            prop_assert!((-2..=2).contains(&t.buyer_rating));
            prop_assert!((-2..=2).contains(&t.seller_rating));
            prop_assert!(t.month < cfg.months);
            rating_sum += t.buyer_rating as i64 + t.seller_rating as i64;
        }
        // Reputation conservation: total reputation equals total ratings.
        let total_rep: i64 = (0..p.user_count())
            .map(|u| p.reputation(NodeId::from(u)))
            .sum();
        prop_assert_eq!(total_rep, rating_sum);
        // Business networks are symmetric.
        for t in p.transactions().iter().take(100) {
            prop_assert!(p.business_network(t.buyer).contains(&t.seller));
            prop_assert!(p.business_network(t.seller).contains(&t.buyer));
        }
    }

    #[test]
    fn crawl_from_any_seed_is_duplicate_free(seed in 0u64..20, start in 0u32..120) {
        let cfg = tiny_config(120, 800);
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        let found = crawl(&p, NodeId(start), None);
        let mut sorted: Vec<NodeId> = found.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), found.len());
        prop_assert_eq!(found[0], NodeId(start));
        // Personal network is generated connected ⇒ full coverage.
        prop_assert_eq!(found.len(), p.user_count());
    }

    #[test]
    fn io_roundtrips_any_generated_trace(seed in 0u64..15) {
        let cfg = tiny_config(80, 600);
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        // Dump roundtrip.
        let rebuilt = import_platform(&export_platform(&p));
        prop_assert_eq!(rebuilt.transactions(), p.transactions());
        for u in 0..p.user_count() {
            prop_assert_eq!(
                rebuilt.reputation(NodeId::from(u)),
                p.reputation(NodeId::from(u))
            );
        }
        // CSV roundtrip.
        let mut buf = Vec::new();
        write_transactions_csv(&p, &mut buf).expect("write");
        let parsed = read_transactions_csv(&buf[..]).expect("parse");
        prop_assert_eq!(parsed, p.transactions());
    }

    #[test]
    fn analysis_outputs_are_well_formed(seed in 0u64..10) {
        let cfg = tiny_config(150, 2000);
        let p = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        let a = TraceAnalysis::new(&p);
        let cdf = a.category_rank_cdf(7);
        for w in cdf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "CDF must be monotone");
        }
        prop_assert!(cdf.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        let sim_cdf = a.similarity_transaction_cdf(10);
        prop_assert!((sim_cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        let share = a.share_transactions_above_similarity(0.3);
        prop_assert!((0.0..=1.0).contains(&share));
        for s in a.rating_stats_by_distance() {
            prop_assert!((1..=4).contains(&s.distance));
            prop_assert!((-2.0..=2.0).contains(&s.avg_rating_value));
            prop_assert!(s.avg_rating_count >= 1.0);
        }
    }
}
