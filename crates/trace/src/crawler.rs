//! The BFS crawler over the platform, mimicking the paper's data-collection
//! methodology:
//!
//! *"To crawl the data, we first selected a user in the Overstock as a seed
//! node, and then used the breadth first search method to search through
//! each node in the friend list in the personal network and business
//! contact list in the business network."*

use std::collections::VecDeque;

use crate::model::{Platform, UserId};

/// Crawl the platform from `seed`, breadth-first over both the friend list
/// and the business contact list, visiting at most `limit` users (or
/// everything reachable when `limit` is `None`).
///
/// Returns the discovered users in visit order (seed first).
pub fn crawl(platform: &Platform, seed: UserId, limit: Option<usize>) -> Vec<UserId> {
    let n = platform.user_count();
    assert!(seed.index() < n, "seed out of range");
    let cap = limit.unwrap_or(n);
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[seed.index()] = true;
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        if order.len() >= cap {
            break;
        }
        // Friend list first, then business contacts — both sorted, so the
        // crawl order is deterministic.
        let friends = platform.personal_network().neighbors(u).iter().copied();
        let partners = platform.business_network(u).iter().copied();
        for v in friends.chain(partners) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// The fraction of all users a crawl from `seed` discovers — the coverage
/// the paper's crawl achieved depends on the platform's connectivity.
pub fn coverage(platform: &Platform, seed: UserId) -> f64 {
    crawl(platform, seed, None).len() as f64 / platform.user_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceConfig};
    use crate::model::Transaction;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialtrust_socnet::graph::SocialGraph;
    use socialtrust_socnet::interest::{InterestId, InterestSet};
    use socialtrust_socnet::relationship::Relationship;
    use socialtrust_socnet::NodeId;

    #[test]
    fn crawl_covers_connected_platform() {
        let p = generate(&TraceConfig::small(), &mut ChaCha8Rng::seed_from_u64(1));
        // The personal network is generated connected, so coverage is 1.
        assert_eq!(coverage(&p, NodeId(0)), 1.0);
    }

    #[test]
    fn crawl_respects_limit() {
        let p = generate(&TraceConfig::small(), &mut ChaCha8Rng::seed_from_u64(2));
        let found = crawl(&p, NodeId(0), Some(50));
        assert_eq!(found.len(), 50);
        assert_eq!(found[0], NodeId(0));
        // No duplicates.
        let mut sorted = found.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn crawl_traverses_business_links_too() {
        // Two users with no friendship but one transaction: the business
        // network carries the crawl across.
        let g = SocialGraph::new(3);
        let interests = vec![InterestSet::from_ids([0u16]); 3];
        let mut p = Platform::new(g, interests);
        p.record_transaction(Transaction {
            buyer: NodeId(0),
            seller: NodeId(1),
            category: InterestId(0),
            buyer_rating: 1,
            seller_rating: 1,
            month: 0,
        });
        let found = crawl(&p, NodeId(0), None);
        assert_eq!(found, vec![NodeId(0), NodeId(1)]);
        assert!((coverage(&p, NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn crawl_traverses_friend_links() {
        let mut g = SocialGraph::new(3);
        g.add_relationship(NodeId(0), NodeId(2), Relationship::friendship());
        let interests = vec![InterestSet::from_ids([0u16]); 3];
        let p = Platform::new(g, interests);
        let found = crawl(&p, NodeId(0), None);
        assert_eq!(found, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn crawl_is_deterministic() {
        let p = generate(&TraceConfig::small(), &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(
            crawl(&p, NodeId(5), Some(100)),
            crawl(&p, NodeId(5), Some(100))
        );
    }
}
