//! The Section-3 analysis toolkit: everything the paper measures on the
//! Overstock trace, producing the series behind Figures 1–4 and
//! observations O1–O6.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::distance::distances_from;
use socialtrust_socnet::interest::similarity;
use socialtrust_socnet::NodeId;

use crate::model::Platform;

/// The paper's correlation coefficient:
/// `C = s_xy² / (s_xx · s_yy)` with `s_xy = Σ(x−x̄)(y−ȳ)`,
/// `s_xx = Σ(x−x̄)²`, `s_yy = Σ(y−ȳ)²`.
///
/// (This is the square of Pearson's r, i.e. R²; we follow the paper's
/// definition so the reported numbers are comparable to its C = 0.996 and
/// C = 0.092.)
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series must have equal length");
    if x.len() < 2 {
        return 0.0;
    }
    let n = x.len() as f64;
    let (mx, my) = (x.iter().sum::<f64>() / n, y.iter().sum::<f64>() / n);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy * sxy) / (sxx * syy)
}

/// Mean rating value and rating count per social distance (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceStats {
    /// Social distance in hops (1–4).
    pub distance: u32,
    /// Average buyer→seller rating value at this distance.
    pub avg_rating_value: f64,
    /// Average number of ratings per (buyer, seller) pair at this distance.
    pub avg_rating_count: f64,
}

/// Per-month rating-frequency statistics — the empirical basis for the
/// `T⁺_t` / `T⁻_t` detection thresholds of Section 4.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlyRatingStats {
    /// Mean issued ratings per active (user, month) cell — the paper's F̄.
    pub overall_mean: f64,
    /// Mean positive ratings per active positive cell.
    pub positive_mean: f64,
    /// Maximum positive ratings any user issued in one month.
    pub positive_max: u64,
    /// Minimum (non-zero) positive ratings in an active cell.
    pub positive_min: u64,
    /// Number of (user, month) cells with at least one positive rating.
    pub positive_cells: u64,
    /// Mean negative ratings per active negative cell.
    pub negative_mean: f64,
    /// Maximum negative ratings any user issued in one month.
    pub negative_max: u64,
    /// Minimum (non-zero) negative ratings in an active cell.
    pub negative_min: u64,
    /// Number of (user, month) cells with at least one negative rating.
    pub negative_cells: u64,
}

impl Default for MonthlyRatingStats {
    fn default() -> Self {
        MonthlyRatingStats {
            overall_mean: 0.0,
            positive_mean: 0.0,
            positive_max: 0,
            positive_min: u64::MAX,
            positive_cells: 0,
            negative_mean: 0.0,
            negative_max: 0,
            negative_min: u64::MAX,
            negative_cells: 0,
        }
    }
}

/// Analysis over a generated (or crawled) platform.
#[derive(Debug, Clone, Copy)]
pub struct TraceAnalysis<'a> {
    platform: &'a Platform,
}

impl<'a> TraceAnalysis<'a> {
    /// Analyze `platform`.
    pub fn new(platform: &'a Platform) -> Self {
        TraceAnalysis { platform }
    }

    /// Per-user `(reputation, business-network size)` pairs — Figure 1(a).
    pub fn business_network_vs_reputation(&self) -> Vec<(f64, f64)> {
        (0..self.platform.user_count())
            .map(|u| {
                let id = NodeId::from(u);
                (
                    self.platform.reputation(id) as f64,
                    self.platform.business_network_size(id) as f64,
                )
            })
            .collect()
    }

    /// The paper's C for reputation vs business-network size (≈ 0.996).
    pub fn business_reputation_correlation(&self) -> f64 {
        let pairs = self.business_network_vs_reputation();
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        correlation(&x, &y)
    }

    /// Per-user `(reputation, received-transaction count)` — Figure 1(b).
    pub fn transactions_vs_reputation(&self) -> Vec<(f64, f64)> {
        let mut sales = vec![0u64; self.platform.user_count()];
        for t in self.platform.transactions() {
            sales[t.seller.index()] += 1;
        }
        (0..self.platform.user_count())
            .map(|u| {
                (
                    self.platform.reputation(NodeId::from(u)) as f64,
                    sales[u] as f64,
                )
            })
            .collect()
    }

    /// Per-user `(reputation, personal-network size)` — Figure 2.
    pub fn personal_network_vs_reputation(&self) -> Vec<(f64, f64)> {
        (0..self.platform.user_count())
            .map(|u| {
                let id = NodeId::from(u);
                (
                    self.platform.reputation(id) as f64,
                    self.platform.personal_network_size(id) as f64,
                )
            })
            .collect()
    }

    /// The paper's C for reputation vs personal-network size (≈ 0.092).
    pub fn personal_reputation_correlation(&self) -> f64 {
        let pairs = self.personal_network_vs_reputation();
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        correlation(&x, &y)
    }

    /// Figure 3: average rating value and rating frequency per social
    /// distance 1–4 between transaction partners.
    pub fn rating_stats_by_distance(&self) -> Vec<DistanceStats> {
        // Aggregate transactions per (buyer, seller) pair first.
        let mut per_pair: BTreeMap<(NodeId, NodeId), (f64, u64)> = BTreeMap::new();
        for t in self.platform.transactions() {
            let e = per_pair.entry((t.buyer, t.seller)).or_insert((0.0, 0));
            e.0 += t.buyer_rating as f64;
            e.1 += 1;
        }
        // Cache BFS distances per distinct buyer (cap 4 hops).
        let mut distance_cache: BTreeMap<NodeId, Vec<Option<u32>>> = BTreeMap::new();
        let mut sums: BTreeMap<u32, (f64, u64, u64)> = BTreeMap::new(); // d → (Σvalue, Σcount, pairs)
        for (&(buyer, seller), &(value_sum, count)) in &per_pair {
            let distances = distance_cache.entry(buyer).or_insert_with(|| {
                distances_from(self.platform.personal_network(), buyer, Some(4))
            });
            let Some(d) = distances[seller.index()] else {
                continue; // beyond 4 hops: off the figure's x-axis
            };
            if d == 0 {
                continue;
            }
            let e = sums.entry(d).or_insert((0.0, 0, 0));
            e.0 += value_sum;
            e.1 += count;
            e.2 += 1;
        }
        (1..=4)
            .filter_map(|d| {
                sums.get(&d)
                    .map(|&(value_sum, count, pairs)| DistanceStats {
                        distance: d,
                        avg_rating_value: value_sum / count as f64,
                        avg_rating_count: count as f64 / pairs as f64,
                    })
            })
            .collect()
    }

    /// Figure 4(a): the share of purchases per category *rank*. Element `k`
    /// is the fraction of an average user's purchases that fall in its
    /// `(k+1)`-th most-purchased category.
    pub fn category_rank_shares(&self, max_rank: usize) -> Vec<f64> {
        let n = self.platform.user_count();
        let mut per_user: Vec<BTreeMap<u16, u64>> = vec![BTreeMap::new(); n];
        for t in self.platform.transactions() {
            *per_user[t.buyer.index()].entry(t.category.0).or_insert(0) += 1;
        }
        let mut rank_totals = vec![0u64; max_rank];
        let mut grand_total = 0u64;
        for counts in &per_user {
            let mut sorted: Vec<u64> = counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for (k, &c) in sorted.iter().enumerate() {
                if k < max_rank {
                    rank_totals[k] += c;
                }
                grand_total += c;
            }
        }
        if grand_total == 0 {
            return vec![0.0; max_rank];
        }
        rank_totals
            .iter()
            .map(|&c| c as f64 / grand_total as f64)
            .collect()
    }

    /// CDF over category ranks (Figure 4(a) plots this cumulative form).
    pub fn category_rank_cdf(&self, max_rank: usize) -> Vec<f64> {
        let shares = self.category_rank_shares(max_rank);
        shares
            .iter()
            .scan(0.0, |acc, &s| {
                *acc += s;
                Some(*acc)
            })
            .collect()
    }

    /// O5: the fraction of purchases falling in each buyer's top 3
    /// categories (the paper reports ≈ 88%).
    pub fn top3_category_share(&self) -> f64 {
        self.category_rank_cdf(3).last().copied().unwrap_or(0.0)
    }

    /// Figure 4(b): CDF of transaction volume over buyer–seller interest
    /// similarity. Returns `(similarity_upper_bound, cdf)` per bin.
    pub fn similarity_transaction_cdf(&self, bins: usize) -> Vec<(f64, f64)> {
        assert!(bins > 0);
        let mut counts = vec![0u64; bins];
        let mut total = 0u64;
        for t in self.platform.transactions() {
            let s = similarity(
                self.platform.interests(t.buyer),
                self.platform.interests(t.seller),
            );
            let bin = ((s * bins as f64) as usize).min(bins - 1);
            counts[bin] += 1;
            total += 1;
        }
        let mut acc = 0u64;
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                (
                    (i + 1) as f64 / bins as f64,
                    if total == 0 {
                        0.0
                    } else {
                        acc as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// The paper's Section 4.3 empirical numbers come from per-month
    /// rating-frequency statistics of the trace: *"in Overstock,
    /// F̄ = 2.2/month"* and *"the average, maximum and minimum numbers of
    /// positive ratings of a node per month are 1.75, 21 and 1, while
    /// those of negative ratings are 1.84, 2 and 1"*. This computes the
    /// same statistics from the platform.
    pub fn monthly_rating_stats(&self) -> MonthlyRatingStats {
        // Per (rater, month): positive / negative counts, over buyer
        // ratings (the paper counts a user's issued ratings per month).
        let mut per: BTreeMap<(NodeId, u32), (u64, u64)> = BTreeMap::new();
        for t in self.platform.transactions() {
            let e = per.entry((t.buyer, t.month)).or_insert((0, 0));
            if t.buyer_rating > 0 {
                e.0 += 1;
            } else if t.buyer_rating < 0 {
                e.1 += 1;
            }
        }
        let mut stats = MonthlyRatingStats::default();
        let mut total: u64 = 0;
        let mut active_cells: u64 = 0;
        for &(pos, neg) in per.values() {
            total += pos + neg;
            active_cells += 1;
            if pos > 0 {
                stats.positive_mean += pos as f64;
                stats.positive_max = stats.positive_max.max(pos);
                stats.positive_min = stats.positive_min.min(pos);
                stats.positive_cells += 1;
            }
            if neg > 0 {
                stats.negative_mean += neg as f64;
                stats.negative_max = stats.negative_max.max(neg);
                stats.negative_min = stats.negative_min.min(neg);
                stats.negative_cells += 1;
            }
        }
        if stats.positive_cells > 0 {
            stats.positive_mean /= stats.positive_cells as f64;
        } else {
            stats.positive_min = 0;
        }
        if stats.negative_cells > 0 {
            stats.negative_mean /= stats.negative_cells as f64;
        } else {
            stats.negative_min = 0;
        }
        stats.overall_mean = if active_cells == 0 {
            0.0
        } else {
            total as f64 / active_cells as f64
        };
        stats
    }

    /// O6: the fraction of transactions between pairs with interest
    /// similarity strictly above `threshold` (the paper reports 60% above
    /// 0.3).
    pub fn share_transactions_above_similarity(&self, threshold: f64) -> f64 {
        let txs = self.platform.transactions();
        if txs.is_empty() {
            return 0.0;
        }
        let above = txs
            .iter()
            .filter(|t| {
                similarity(
                    self.platform.interests(t.buyer),
                    self.platform.interests(t.seller),
                ) > threshold
            })
            .count();
        above as f64 / txs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn platform() -> Platform {
        generate(&TraceConfig::small(), &mut ChaCha8Rng::seed_from_u64(7))
    }

    #[test]
    fn correlation_definition_matches_paper() {
        // Perfectly linear → C = 1 (R² of 1).
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        // Perfect anti-correlation also gives C = 1 under the paper's
        // squared definition.
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &yneg) - 1.0).abs() < 1e-12);
        // Constant series → 0.
        assert_eq!(correlation(&x, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn o1_business_network_strongly_correlates_with_reputation() {
        let p = platform();
        let c = TraceAnalysis::new(&p).business_reputation_correlation();
        assert!(c > 0.8, "C = {c}, paper reports 0.996");
    }

    #[test]
    fn o2_personal_network_weakly_correlates_with_reputation() {
        let p = platform();
        let a = TraceAnalysis::new(&p);
        let weak = a.personal_reputation_correlation();
        let strong = a.business_reputation_correlation();
        assert!(weak < 0.3, "C = {weak}, paper reports 0.092");
        assert!(weak < strong / 2.0, "personal must be far weaker");
    }

    #[test]
    fn o3_o4_ratings_fall_with_social_distance() {
        let p = platform();
        let stats = TraceAnalysis::new(&p).rating_stats_by_distance();
        assert!(stats.len() >= 3, "need distances 1-3 populated: {stats:?}");
        // Value decreases from distance 1 to the farthest measured.
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert_eq!(first.distance, 1);
        assert!(
            first.avg_rating_value > last.avg_rating_value,
            "{first:?} vs {last:?}"
        );
        assert!(
            first.avg_rating_count > last.avg_rating_count,
            "closer pairs rate more often"
        );
    }

    #[test]
    fn o5_purchases_concentrate_in_top_categories() {
        let p = platform();
        let a = TraceAnalysis::new(&p);
        let top3 = a.top3_category_share();
        assert!(
            (0.75..=1.0).contains(&top3),
            "top-3 share {top3}, paper reports ≈ 0.88"
        );
        let cdf = a.category_rank_cdf(7);
        // CDF must be monotone and end ≈ 1.
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(*cdf.last().unwrap() > 0.97);
    }

    #[test]
    fn o6_transactions_concentrate_on_similar_pairs() {
        let p = platform();
        let a = TraceAnalysis::new(&p);
        let above_30 = a.share_transactions_above_similarity(0.3);
        assert!(
            above_30 > 0.5,
            "share above 0.3 similarity = {above_30}, paper reports 0.6"
        );
        let cdf = a.similarity_transaction_cdf(10);
        assert_eq!(cdf.len(), 10);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
    }

    #[test]
    fn transactions_vs_reputation_is_increasing() {
        let p = platform();
        let pairs = TraceAnalysis::new(&p).transactions_vs_reputation();
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        assert!(correlation(&x, &y) > 0.6, "O1: sales track reputation");
    }

    #[test]
    fn monthly_rating_stats_match_paper_shape() {
        let p = platform();
        let stats = TraceAnalysis::new(&p).monthly_rating_stats();
        // F̄ in a plausible band (paper: 2.2/month); positivity bias means
        // many more positive than negative cells, and the positive maximum
        // dwarfs the negative one (paper: 21 vs 2).
        assert!(stats.overall_mean >= 1.0, "F̄ = {}", stats.overall_mean);
        assert!(stats.positive_cells > stats.negative_cells * 3);
        assert!(stats.positive_max >= stats.negative_max);
        assert!(stats.positive_min >= 1);
        assert!(stats.positive_mean >= 1.0);
    }

    #[test]
    fn monthly_rating_stats_empty_platform() {
        use socialtrust_socnet::graph::SocialGraph;
        use socialtrust_socnet::interest::InterestSet;
        let p = Platform::new(SocialGraph::new(3), vec![InterestSet::new(); 3]);
        let stats = TraceAnalysis::new(&p).monthly_rating_stats();
        assert_eq!(stats.overall_mean, 0.0);
        assert_eq!(stats.positive_cells, 0);
        assert_eq!(stats.positive_min, 0);
        assert_eq!(stats.negative_min, 0);
    }

    #[test]
    fn empty_platform_degenerates_gracefully() {
        use socialtrust_socnet::graph::SocialGraph;
        use socialtrust_socnet::interest::InterestSet;
        let p = Platform::new(SocialGraph::new(5), vec![InterestSet::new(); 5]);
        let a = TraceAnalysis::new(&p);
        assert_eq!(a.top3_category_share(), 0.0);
        assert_eq!(a.share_transactions_above_similarity(0.3), 0.0);
        assert!(a.rating_stats_by_distance().is_empty());
        assert_eq!(a.business_reputation_correlation(), 0.0);
    }
}
