//! # socialtrust-trace
//!
//! A synthetic Overstock-style auction platform and the Section-3 analysis
//! toolkit of the SocialTrust paper.
//!
//! The paper grounds its suspicious-behavior patterns (B1–B4) in a crawl of
//! 450,000 transaction ratings among 200,000+ Overstock Auctions users
//! (Sep 2008 – Sep 2010). That trace is not publicly available, so this
//! crate provides the closest synthetic equivalent:
//!
//! * [`model`] — users with personal networks (friendship links), business
//!   networks (transaction partners), product categories, transactions and
//!   ratings in `[-2, +2]`;
//! * [`generator`] — a configurable platform generator calibrated to every
//!   statistic the paper reports: the near-perfect correlation between
//!   business-network size and reputation (C = 0.996), the weak
//!   personal-network correlation (C = 0.092), power-law category
//!   purchases (top-3 categories ≈ 88% of purchases), distance-dependent
//!   rating value and frequency, and interest-similarity-dependent
//!   transaction volume;
//! * [`crawler`] — a BFS crawler over the platform mimicking the paper's
//!   crawl methodology (seed user, breadth-first over friend and business
//!   contact lists);
//! * [`analysis`] — the Section-3 measurements reproducing Figures 1–4 and
//!   observations O1–O6.
//!
//! The point of the substitution: the paper uses the trace only to (a)
//! motivate B1–B4 and (b) pick empirical thresholds. Reproducing the
//! reported distributions reproduces both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod crawler;
pub mod generator;
pub mod io;
pub mod model;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::analysis::TraceAnalysis;
    pub use crate::crawler::crawl;
    pub use crate::generator::{generate, TraceConfig};
    pub use crate::model::{Platform, Transaction, UserId};
}
