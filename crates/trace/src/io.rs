//! Trace import/export.
//!
//! The synthetic platform stands in for the paper's crawled Overstock
//! trace, but the analysis pipeline is trace-agnostic: this module
//! serializes a platform to a portable dump (and a flat CSV of
//! transactions) and rebuilds a [`Platform`] from one — so a real crawled
//! dataset can be plugged into the Section-3 analysis unchanged.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interest::{InterestId, InterestSet};
use socialtrust_socnet::relationship::{Relationship, RelationshipKind};
use socialtrust_socnet::NodeId;

use crate::model::{Platform, Transaction};

/// A self-contained, serializable snapshot of a platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformDump {
    /// Number of users.
    pub users: usize,
    /// Friendship edges `(a, b, relationship count)` of the personal
    /// network (relationship kinds are normalized to `Friendship` — the
    /// trace analysis only uses adjacency and counts).
    pub friendships: Vec<(u32, u32, u32)>,
    /// Declared interest categories per user.
    pub interests: Vec<Vec<u16>>,
    /// All transactions.
    pub transactions: Vec<Transaction>,
}

/// Snapshot a platform into a dump.
pub fn export_platform(platform: &Platform) -> PlatformDump {
    let g = platform.personal_network();
    let friendships: Vec<(u32, u32, u32)> = g
        .edges()
        .map(|(a, b, rels)| (a.0, b.0, rels.len() as u32))
        .collect();
    let interests: Vec<Vec<u16>> = (0..platform.user_count())
        .map(|u| {
            platform
                .interests(NodeId::from(u))
                .as_slice()
                .iter()
                .map(|c| c.0)
                .collect()
        })
        .collect();
    PlatformDump {
        users: platform.user_count(),
        friendships,
        interests,
        transactions: platform.transactions().to_vec(),
    }
}

/// Rebuild a platform from a dump (replays every transaction, so business
/// networks and reputations are reconstructed exactly).
///
/// # Panics
/// Panics on inconsistent dumps (out-of-range users, bad ratings).
pub fn import_platform(dump: &PlatformDump) -> Platform {
    assert_eq!(
        dump.interests.len(),
        dump.users,
        "interest rows must match user count"
    );
    let mut g = SocialGraph::new(dump.users);
    for &(a, b, count) in &dump.friendships {
        for _ in 0..count.max(1) {
            g.add_relationship(
                NodeId(a),
                NodeId(b),
                Relationship::new(RelationshipKind::Friendship),
            );
        }
    }
    let interests: Vec<InterestSet> = dump
        .interests
        .iter()
        .map(|ids| InterestSet::from_ids(ids.iter().copied()))
        .collect();
    let mut platform = Platform::new(g, interests);
    for tx in &dump.transactions {
        platform.record_transaction(*tx);
    }
    platform
}

/// CSV header for the transaction export.
pub const CSV_HEADER: &str = "buyer,seller,category,buyer_rating,seller_rating,month";

/// Write all transactions as CSV (with header).
pub fn write_transactions_csv<W: Write>(platform: &Platform, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for t in platform.transactions() {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            t.buyer.0, t.seller.0, t.category.0, t.buyer_rating, t.seller_rating, t.month
        )?;
    }
    Ok(())
}

/// Error produced when parsing a transaction CSV.
#[derive(Debug)]
pub struct CsvError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parse transactions from CSV (header optional).
pub fn read_transactions_csv<R: BufRead>(input: R) -> Result<Vec<Transaction>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| CsvError {
            line: idx + 1,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed == CSV_HEADER {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 6 {
            return Err(CsvError {
                line: idx + 1,
                message: format!("expected 6 fields, got {}", fields.len()),
            });
        }
        let parse = |f: &str, what: &str| -> Result<i64, CsvError> {
            f.trim().parse().map_err(|_| CsvError {
                line: idx + 1,
                message: format!("bad {what}: {f:?}"),
            })
        };
        let tx = Transaction {
            buyer: NodeId(parse(fields[0], "buyer")? as u32),
            seller: NodeId(parse(fields[1], "seller")? as u32),
            category: InterestId(parse(fields[2], "category")? as u16),
            buyer_rating: parse(fields[3], "buyer_rating")? as i8,
            seller_rating: parse(fields[4], "seller_rating")? as i8,
            month: parse(fields[5], "month")? as u32,
        };
        out.push(tx);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TraceAnalysis;
    use crate::generator::{generate, TraceConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn platform() -> Platform {
        generate(&TraceConfig::small(), &mut ChaCha8Rng::seed_from_u64(5))
    }

    #[test]
    fn dump_roundtrip_preserves_everything_the_analysis_uses() {
        let original = platform();
        let dump = export_platform(&original);
        let rebuilt = import_platform(&dump);
        assert_eq!(rebuilt.user_count(), original.user_count());
        assert_eq!(rebuilt.transactions(), original.transactions());
        for u in 0..original.user_count() {
            let id = NodeId::from(u);
            assert_eq!(rebuilt.reputation(id), original.reputation(id));
            assert_eq!(
                rebuilt.business_network_size(id),
                original.business_network_size(id)
            );
            assert_eq!(
                rebuilt.personal_network_size(id),
                original.personal_network_size(id)
            );
            assert_eq!(rebuilt.interests(id), original.interests(id));
        }
        // The analysis gives identical answers.
        let a = TraceAnalysis::new(&original);
        let b = TraceAnalysis::new(&rebuilt);
        assert_eq!(
            a.business_reputation_correlation(),
            b.business_reputation_correlation()
        );
        assert_eq!(a.top3_category_share(), b.top3_category_share());
    }

    #[test]
    fn json_roundtrip() {
        let dump = export_platform(&platform());
        let json = serde_json::to_string(&dump).expect("serialize");
        let back: PlatformDump = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.transactions, dump.transactions);
        assert_eq!(back.friendships.len(), dump.friendships.len());
    }

    #[test]
    fn csv_roundtrip() {
        let original = platform();
        let mut buf = Vec::new();
        write_transactions_csv(&original, &mut buf).expect("write");
        let parsed = read_transactions_csv(&buf[..]).expect("parse");
        assert_eq!(parsed, original.transactions());
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let bad = "1,2,3,4,5\n";
        let err = read_transactions_csv(bad.as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected 6 fields"));
        let bad2 = "a,2,3,1,1,0\n";
        let err2 = read_transactions_csv(bad2.as_bytes()).unwrap_err();
        assert!(err2.message.contains("bad buyer"));
        assert!(err2.to_string().contains("csv line 1"));
    }

    #[test]
    fn csv_skips_header_and_blank_lines() {
        let text = format!("{CSV_HEADER}\n\n0,1,2,1,-1,3\n");
        let parsed = read_transactions_csv(text.as_bytes()).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].buyer, NodeId(0));
        assert_eq!(parsed[0].seller_rating, -1);
    }
}
