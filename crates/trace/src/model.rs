//! The Overstock-style platform model: users, personal and business
//! networks, categories, transactions, ratings.
//!
//! Overstock Auctions (as described in Section 3 of the paper) pairs an
//! auction market with a social network: each user has a **personal
//! network** of accepted friendships and a **business network** recording
//! every transaction partner. After a transaction, buyer and seller rate
//! each other in `[-2, +2]`; a user's reputation is the aggregate of the
//! ratings it received.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interest::{InterestId, InterestSet};
use socialtrust_socnet::NodeId;

/// Identifier of a platform user. Interchangeable with
/// [`NodeId`] (same dense index space); a separate alias keeps
/// trace-analysis code readable.
pub type UserId = NodeId;

/// One completed transaction with its mutual ratings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// The purchasing user.
    pub buyer: UserId,
    /// The selling user.
    pub seller: UserId,
    /// Product category.
    pub category: InterestId,
    /// The buyer's rating of the seller, in `[-2, +2]`.
    pub buyer_rating: i8,
    /// The seller's rating of the buyer, in `[-2, +2]`.
    pub seller_rating: i8,
    /// Month index since the start of the trace (the paper's trace spans
    /// 24 months).
    pub month: u32,
}

impl Transaction {
    /// Validate rating bounds.
    pub fn validate(&self) {
        assert!(
            (-2..=2).contains(&self.buyer_rating) && (-2..=2).contains(&self.seller_rating),
            "Overstock ratings live in [-2, +2]"
        );
        assert!(self.buyer != self.seller, "self-trade is not a transaction");
    }
}

/// The synthetic auction platform.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The personal (friendship) network.
    personal: SocialGraph,
    /// `business[u]` = the distinct transaction partners of `u`.
    business: Vec<BTreeSet<UserId>>,
    /// Declared product-interest categories per user.
    interests: Vec<InterestSet>,
    /// All transactions, in generation order.
    transactions: Vec<Transaction>,
    /// Cached reputation (sum of ratings received) per user.
    reputation: Vec<i64>,
}

impl Platform {
    /// An empty platform over `n` users with the given personal network and
    /// interests.
    pub fn new(personal: SocialGraph, interests: Vec<InterestSet>) -> Self {
        let n = personal.node_count();
        assert_eq!(n, interests.len(), "user count mismatch");
        Platform {
            personal,
            business: vec![BTreeSet::new(); n],
            interests,
            transactions: Vec::new(),
            reputation: vec![0; n],
        }
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.reputation.len()
    }

    /// The personal (friendship) network.
    pub fn personal_network(&self) -> &SocialGraph {
        &self.personal
    }

    /// The distinct business partners of `user`.
    pub fn business_network(&self, user: UserId) -> &BTreeSet<UserId> {
        &self.business[user.index()]
    }

    /// Size of `user`'s business network.
    pub fn business_network_size(&self, user: UserId) -> usize {
        self.business[user.index()].len()
    }

    /// Size of `user`'s personal network (friend count).
    pub fn personal_network_size(&self, user: UserId) -> usize {
        self.personal.degree(user)
    }

    /// Declared interest categories of `user`.
    pub fn interests(&self, user: UserId) -> &InterestSet {
        &self.interests[user.index()]
    }

    /// Aggregate reputation of `user`: the sum of all ratings it received
    /// (as seller and as buyer), per the Overstock model.
    pub fn reputation(&self, user: UserId) -> i64 {
        self.reputation[user.index()]
    }

    /// All transactions so far.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Record a completed transaction: appends it, updates both business
    /// networks and both reputations.
    pub fn record_transaction(&mut self, tx: Transaction) {
        tx.validate();
        self.business[tx.buyer.index()].insert(tx.seller);
        self.business[tx.seller.index()].insert(tx.buyer);
        self.reputation[tx.seller.index()] += tx.buyer_rating as i64;
        self.reputation[tx.buyer.index()] += tx.seller_rating as i64;
        self.transactions.push(tx);
    }

    /// Number of transactions in which `user` was the seller.
    pub fn sales_count(&self, user: UserId) -> usize {
        self.transactions
            .iter()
            .filter(|t| t.seller == user)
            .count()
    }

    /// Number of transactions in which `user` was the buyer.
    pub fn purchase_count(&self, user: UserId) -> usize {
        self.transactions.iter().filter(|t| t.buyer == user).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtrust_socnet::relationship::Relationship;

    fn platform() -> Platform {
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        let interests = vec![InterestSet::from_ids([0u16, 1]); 4];
        Platform::new(g, interests)
    }

    fn tx(buyer: u32, seller: u32, br: i8, sr: i8) -> Transaction {
        Transaction {
            buyer: NodeId(buyer),
            seller: NodeId(seller),
            category: InterestId(0),
            buyer_rating: br,
            seller_rating: sr,
            month: 0,
        }
    }

    #[test]
    fn recording_updates_business_and_reputation() {
        let mut p = platform();
        p.record_transaction(tx(0, 1, 2, 1));
        p.record_transaction(tx(2, 1, -1, 0));
        assert_eq!(p.business_network_size(NodeId(1)), 2);
        assert_eq!(p.business_network_size(NodeId(0)), 1);
        assert_eq!(p.reputation(NodeId(1)), 1, "2 + (-1)");
        assert_eq!(p.reputation(NodeId(0)), 1, "seller's rating of buyer");
        assert_eq!(p.sales_count(NodeId(1)), 2);
        assert_eq!(p.purchase_count(NodeId(0)), 1);
    }

    #[test]
    fn repeat_partners_count_once_in_business_network() {
        let mut p = platform();
        for _ in 0..5 {
            p.record_transaction(tx(0, 1, 1, 1));
        }
        assert_eq!(p.business_network_size(NodeId(1)), 1);
        assert_eq!(p.reputation(NodeId(1)), 5);
        assert_eq!(p.transactions().len(), 5);
    }

    #[test]
    fn personal_and_business_networks_are_independent() {
        let mut p = platform();
        // 2 and 3 are strangers in the personal network but can transact.
        p.record_transaction(tx(2, 3, 2, 2));
        assert_eq!(p.personal_network_size(NodeId(2)), 0);
        assert_eq!(p.business_network_size(NodeId(2)), 1);
    }

    #[test]
    #[should_panic(expected = "[-2, +2]")]
    fn out_of_range_ratings_rejected() {
        let mut p = platform();
        p.record_transaction(tx(0, 1, 3, 0));
    }

    #[test]
    #[should_panic(expected = "self-trade")]
    fn self_trade_rejected() {
        let mut p = platform();
        p.record_transaction(tx(1, 1, 1, 1));
    }
}
