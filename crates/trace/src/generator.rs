//! Synthetic Overstock trace generation, calibrated to the paper's
//! reported statistics.
//!
//! What the generator reproduces (and where the paper reports it):
//!
//! * **O1 / Fig 1** — buyers prefer high-reputed sellers, so reputation,
//!   transaction count and business-network size grow together
//!   (C ≈ 0.996).
//! * **O2 / Fig 2** — personal-network size is assigned independently of
//!   seller quality (C ≈ 0.092).
//! * **O3–O4 / Fig 3** — a configurable fraction of purchases go to
//!   socially-close sellers (≤ 3 hops), which are rated higher and more
//!   often; rating value and frequency fall with social distance.
//! * **O5 / Fig 4(a)** — each buyer's purchases across its interest
//!   categories follow a steep power law (top-3 categories ≈ 88%).
//! * **O6 / Fig 4(b)** — buyers buy within their interests, so transaction
//!   volume concentrates on pairs with high interest similarity.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::distance::distances_from;
use socialtrust_socnet::interest::InterestId;
use socialtrust_socnet::NodeId;

use crate::model::{Platform, Transaction, UserId};

/// Generator configuration. Defaults are a 1/10-scale Overstock (the paper
/// crawled 450k ratings over 200k+ users; the full scale runs too, it just
/// takes longer than a unit test should).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of users.
    pub users: usize,
    /// Number of product categories.
    pub categories: u16,
    /// Interest categories per user (uniform range).
    pub interests_per_user: (usize, usize),
    /// Number of transactions to generate.
    pub transactions: usize,
    /// Trace length in months (the paper's crawl spans 24).
    pub months: u32,
    /// Average personal-network degree.
    pub avg_personal_degree: f64,
    /// Power-law exponent for per-buyer category preference. 2.2 puts
    /// ≈ 88% of purchases in the top 3 categories, matching Fig 4(a).
    pub category_exponent: f64,
    /// Probability that a purchase goes to a socially-close (≤ 3 hops)
    /// seller instead of a reputation-weighted random one.
    pub social_purchase_prob: f64,
    /// Repeat-transaction multiplier for close partners: a distance-1
    /// partner pair transacts up to this many extra times.
    pub max_repeat_close: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            users: 2_000,
            categories: 30,
            interests_per_user: (1, 8),
            transactions: 45_000,
            months: 24,
            avg_personal_degree: 6.0,
            category_exponent: 2.2,
            social_purchase_prob: 0.45,
            max_repeat_close: 4,
        }
    }
}

impl TraceConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        TraceConfig {
            users: 300,
            transactions: 4_000,
            ..TraceConfig::default()
        }
    }
}

/// Per-buyer category preference: its interests in a random order, sampled
/// with power-law weights `1/rank^s`.
fn sample_category<R: Rng + ?Sized>(
    prefs: &[InterestId],
    exponent: f64,
    rng: &mut R,
) -> Option<InterestId> {
    if prefs.is_empty() {
        return None;
    }
    let total: f64 = (1..=prefs.len())
        .map(|k| 1.0 / (k as f64).powf(exponent))
        .sum();
    let mut x = rng.gen::<f64>() * total;
    for (k, &cat) in prefs.iter().enumerate() {
        let w = 1.0 / ((k + 1) as f64).powf(exponent);
        if x < w {
            return Some(cat);
        }
        x -= w;
    }
    prefs.last().copied()
}

/// Rating for a transaction: seller quality sets the base; social closeness
/// adds the bonus the trace shows (Fig 3(a)); noise rounds it off. Clamped
/// to Overstock's `[-2, +2]`.
fn draw_rating<R: Rng + ?Sized>(quality: f64, distance: Option<u32>, rng: &mut R) -> i8 {
    let base = 4.0 * quality - 2.0; // quality 0 → −2, quality 1 → +2
    let bonus = match distance {
        Some(1) => 1.2,
        Some(2) => 0.7,
        Some(3) => 0.3,
        _ => 0.0,
    };
    let noise = rng.gen_range(-0.8..0.8);
    (base + bonus + noise).round().clamp(-2.0, 2.0) as i8
}

/// Generate a platform and its transaction trace.
pub fn generate<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> Platform {
    assert!(config.users >= 10, "need at least a handful of users");
    let n = config.users;

    // Personal network: independent of seller quality (O2).
    let personal = connected_random_graph(n, config.avg_personal_degree, (1, 2), rng);
    // Interests.
    let interests = random_interests(n, config.categories, config.interests_per_user, rng);

    // Per-user latent seller quality and activity. Quality is skewed high
    // (most mass near 1): e-commerce feedback has a strong positivity
    // bias — almost every Overstock rating is +2 — and that bias is what
    // makes reputation track transaction volume at C ≈ 0.996 (Fig 1).
    let quality: Vec<f64> = (0..n)
        .map(|_| 1.0 - 0.35 * rng.gen::<f64>().powi(3))
        .collect();
    let buyer_activity: Vec<f64> = (0..n).map(|_| rng.gen::<f64>().powi(2) + 0.05).collect();

    // Category → sellers index.
    let mut sellers_of: Vec<Vec<UserId>> = vec![Vec::new(); config.categories as usize];
    for (u, set) in interests.iter().enumerate() {
        for cat in set.as_slice() {
            sellers_of[cat.0 as usize].push(NodeId::from(u));
        }
    }

    // Per-buyer category preference order (power-law sampled at purchase
    // time).
    let prefs: Vec<Vec<InterestId>> = interests
        .iter()
        .map(|set| {
            let mut order: Vec<InterestId> = set.as_slice().to_vec();
            order.shuffle(rng);
            order
        })
        .collect();

    // Socially-close seller pool per buyer: users within 3 hops.
    let close_pool: Vec<Vec<UserId>> = (0..n)
        .map(|u| {
            distances_from(&personal, NodeId::from(u), Some(3))
                .into_iter()
                .enumerate()
                .filter_map(|(v, d)| match d {
                    Some(d) if d >= 1 => Some(NodeId::from(v)),
                    _ => None,
                })
                .collect()
        })
        .collect();

    let mut platform = Platform::new(personal, interests);

    // Buyer sampling: cumulative activity weights.
    let total_activity: f64 = buyer_activity.iter().sum();

    let mut produced = 0usize;
    let mut guard = 0usize;
    while produced < config.transactions && guard < config.transactions * 20 {
        guard += 1;
        // Weighted buyer pick.
        let mut x = rng.gen::<f64>() * total_activity;
        let mut buyer = 0usize;
        for (u, &a) in buyer_activity.iter().enumerate() {
            if x < a {
                buyer = u;
                break;
            }
            x -= a;
        }
        let buyer_id = NodeId::from(buyer);
        let Some(category) = sample_category(&prefs[buyer], config.category_exponent, rng) else {
            continue;
        };

        // Seller pick: socially-close with probability p, else
        // reputation-weighted among the category's sellers (O1).
        let seller_id = if rng.gen::<f64>() < config.social_purchase_prob {
            let pool: Vec<UserId> = close_pool[buyer]
                .iter()
                .copied()
                .filter(|s| platform.interests(*s).contains(category))
                .collect();
            match pool.choose(rng) {
                Some(&s) => s,
                None => continue,
            }
        } else {
            let pool = &sellers_of[category.0 as usize];
            // Reputation-weighted: weight = reputation clamped at ≥ 1 so
            // newcomers remain reachable.
            let weights: Vec<f64> = pool
                .iter()
                .map(|&s| (platform.reputation(s).max(0) as f64) + 1.0)
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 || pool.is_empty() {
                continue;
            }
            let mut y = rng.gen::<f64>() * total;
            let mut pick = pool[0];
            for (idx, &s) in pool.iter().enumerate() {
                if y < weights[idx] {
                    pick = s;
                    break;
                }
                y -= weights[idx];
            }
            pick
        };
        if seller_id == buyer_id {
            continue;
        }

        let distance = socialtrust_socnet::distance::bfs_distance(
            platform.personal_network(),
            buyer_id,
            seller_id,
            Some(4),
        );
        // Closer partners repeat-transact more (Fig 3(b)).
        let repeats = match distance {
            Some(1) => rng.gen_range(1..=config.max_repeat_close),
            Some(2) => rng.gen_range(1..=(config.max_repeat_close / 2).max(1)),
            _ => 1,
        };
        let month = rng.gen_range(0..config.months);
        for _ in 0..repeats {
            if produced >= config.transactions {
                break;
            }
            let buyer_rating = draw_rating(quality[seller_id.index()], distance, rng);
            let seller_rating = draw_rating(quality[buyer], distance, rng);
            platform.record_transaction(Transaction {
                buyer: buyer_id,
                seller: seller_id,
                category,
                buyer_rating,
                seller_rating,
                month,
            });
            produced += 1;
        }
    }
    platform
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn generates_requested_volume() {
        let cfg = TraceConfig::small();
        let p = generate(&cfg, &mut rng(1));
        assert_eq!(p.transactions().len(), cfg.transactions);
        assert_eq!(p.user_count(), cfg.users);
    }

    #[test]
    fn ratings_in_overstock_range() {
        let p = generate(&TraceConfig::small(), &mut rng(2));
        for t in p.transactions() {
            assert!((-2..=2).contains(&t.buyer_rating));
            assert!((-2..=2).contains(&t.seller_rating));
            assert!(t.month < 24);
        }
    }

    #[test]
    fn buyers_buy_within_their_interests() {
        let p = generate(&TraceConfig::small(), &mut rng(3));
        for t in p.transactions().iter().take(500) {
            assert!(
                p.interests(t.buyer).contains(t.category),
                "buyer must purchase in an interest category"
            );
            assert!(
                p.interests(t.seller).contains(t.category),
                "seller must sell in an interest category"
            );
        }
    }

    #[test]
    fn category_sampling_is_power_law() {
        let prefs: Vec<InterestId> = (0..6u16).map(InterestId).collect::<Vec<_>>();
        let mut r = rng(4);
        let mut counts = [0u32; 6];
        for _ in 0..20_000 {
            let c = sample_category(&prefs, 2.2, &mut r).unwrap();
            counts[c.0 as usize] += 1;
        }
        let total: u32 = counts.iter().sum();
        let top3 = (counts[0] + counts[1] + counts[2]) as f64 / total as f64;
        assert!(
            (0.82..0.95).contains(&top3),
            "top-3 share {top3} should be ≈ 0.88"
        );
    }

    #[test]
    fn rating_grows_with_quality_and_closeness() {
        let mut r = rng(5);
        let avg = |quality: f64, distance: Option<u32>, r: &mut ChaCha8Rng| -> f64 {
            (0..2000)
                .map(|_| draw_rating(quality, distance, r) as f64)
                .sum::<f64>()
                / 2000.0
        };
        let close_good = avg(0.9, Some(1), &mut r);
        let far_good = avg(0.9, None, &mut r);
        let far_bad = avg(0.2, None, &mut r);
        assert!(close_good > far_good, "{close_good} vs {far_good}");
        assert!(far_good > far_bad);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::small();
        let p1 = generate(&cfg, &mut rng(9));
        let p2 = generate(&cfg, &mut rng(9));
        assert_eq!(p1.transactions().len(), p2.transactions().len());
        assert_eq!(p1.transactions()[100], p2.transactions()[100]);
    }

    #[test]
    fn empty_interest_users_never_buy() {
        assert_eq!(sample_category(&[], 2.0, &mut rng(10)), None);
    }
}
