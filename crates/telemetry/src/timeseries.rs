//! The flight recorder: a fixed-capacity ring of registry samples.
//!
//! A point-in-time `/metrics` scrape answers "what is the counter now";
//! it cannot answer "what happened in the 60 seconds before the tick
//! thread stalled". The [`FlightRecorder`] closes that gap: a sampler
//! (typically a dedicated thread calling [`FlightRecorder::sample`] on a
//! fixed interval) reads every metric in a [`Registry`] into a
//! preallocated frame ring, and [`FlightRecorder::window_json`] exports
//! the last N frames — values plus per-interval rates/derivatives — as
//! one JSON document. The daemon serves that document from
//! `/debug/timeseries` and dumps it as a "black box" on shutdown or a
//! detected stall.
//!
//! Design constraints, in order:
//!
//! * **No allocation at steady state.** The schema (one cell per
//!   counter/gauge plus two per histogram: `_count` and `_sum`) and the
//!   frame ring are built once; each `sample()` only writes `f64`s in
//!   place. The schema is rebuilt — and the ring reset — only when the
//!   registry's metric count changes, which stabilizes right after boot.
//! * **Lock-free reads of the metrics themselves.** Cells hold live
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles, so sampling takes no
//!   registry lock after the schema build.
//! * **Self-describing export.** The JSON window carries the sampling
//!   interval, per-series kind, raw samples, and derived
//!   `rate_per_second` arrays, so consumers need no out-of-band schema.
//!
//! ```
//! use std::time::Duration;
//! use socialtrust_telemetry::{timeseries::{FlightRecorder, RecorderConfig}, Registry};
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total");
//! let recorder = FlightRecorder::new(registry, RecorderConfig::default());
//! recorder.sample();
//! hits.add(10);
//! recorder.sample();
//! let window = recorder.window_json(usize::MAX);
//! assert!(window.contains("\"cache_hits_total\""));
//! assert!(window.contains("rate_per_second"));
//! ```

use std::time::{Duration, SystemTime, UNIX_EPOCH};

use std::sync::Mutex;

use crate::metric::{Counter, Gauge, Histogram};
use crate::registry::{MetricHandle, Registry};

/// Sampling interval and ring depth for a [`FlightRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Intended wall-clock spacing between samples. The recorder does not
    /// schedule itself — the owning thread sleeps — but the interval is
    /// exported with every window and used as the rate fallback when two
    /// frames carry identical timestamps.
    pub interval: Duration,
    /// Number of frames the ring retains before overwriting the oldest.
    pub capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval: Duration::from_millis(250),
            capacity: 256,
        }
    }
}

/// One sampled series: a live handle plus how to reduce it to an `f64`.
enum Cell {
    /// Counter value.
    Counter(Counter),
    /// Gauge value.
    Gauge(Gauge),
    /// Histogram observation count (`<family>_count`).
    HistCount(Histogram),
    /// Histogram observation sum (`<family>_sum`).
    HistSum(Histogram),
}

impl Cell {
    fn read(&self) -> f64 {
        match self {
            Cell::Counter(c) => c.get() as f64,
            Cell::Gauge(g) => g.get(),
            Cell::HistCount(h) => h.count() as f64,
            Cell::HistSum(h) => h.sum(),
        }
    }

    /// Counters and histogram count/sum cells are monotone: their
    /// derivative is a rate clamped at zero. Gauges are instantaneous:
    /// the derivative is signed.
    fn monotone(&self) -> bool {
        !matches!(self, Cell::Gauge(_))
    }

    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::HistCount(_) => "histogram_count",
            Cell::HistSum(_) => "histogram_sum",
        }
    }
}

struct Schema {
    names: Vec<String>,
    cells: Vec<Cell>,
    /// Registry metric count the schema was built from; a change means
    /// new registrations and forces a rebuild.
    registry_metrics: usize,
}

struct Frame {
    seq: u64,
    unix_ms: u64,
    values: Vec<f64>,
}

struct Inner {
    schema: Schema,
    /// Ring storage, preallocated to `capacity` frames once the schema
    /// stabilizes. `head` is the next write slot; `len` ≤ capacity.
    frames: Vec<Frame>,
    head: usize,
    len: usize,
    next_seq: u64,
}

/// A fixed-capacity ring of whole-registry samples with windowed JSON
/// export. See the module docs for the design.
pub struct FlightRecorder {
    registry: Registry,
    interval: Duration,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("FlightRecorder")
            .field("interval", &self.interval)
            .field("capacity", &self.capacity)
            .field("series", &inner.schema.cells.len())
            .field("frames", &inner.len)
            .finish()
    }
}

fn build_schema(registry: &Registry) -> Schema {
    let handles = registry.metric_handles();
    let registry_metrics = handles.len();
    let mut names = Vec::with_capacity(registry_metrics);
    let mut cells = Vec::with_capacity(registry_metrics);
    for (key, handle) in handles {
        match handle {
            MetricHandle::Counter(c) => {
                names.push(key);
                cells.push(Cell::Counter(c));
            }
            MetricHandle::Gauge(g) => {
                names.push(key);
                cells.push(Cell::Gauge(g));
            }
            MetricHandle::Histogram(h) => {
                // Labeled keys look like `family{...}`; the _count/_sum
                // suffix attaches to the family, matching the exposition.
                let (family, labels) = match key.split_once('{') {
                    Some((family, rest)) => (family.to_string(), format!("{{{rest}")),
                    None => (key, String::new()),
                };
                names.push(format!("{family}_count{labels}"));
                cells.push(Cell::HistCount(h.clone()));
                names.push(format!("{family}_sum{labels}"));
                cells.push(Cell::HistSum(h));
            }
        }
    }
    Schema {
        names,
        cells,
        registry_metrics,
    }
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Renders an `f64` as a JSON value (`null` when non-finite).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` never produces `inf`/`NaN` for finite values, and the
        // shortest round-trip form is already valid JSON.
        s
    } else {
        "null".to_string()
    }
}

impl FlightRecorder {
    /// Creates a recorder over `registry`. No sampling happens until
    /// [`FlightRecorder::sample`] is called; `config.capacity` is clamped
    /// to at least 2 so a window can always hold one delta.
    pub fn new(registry: Registry, config: RecorderConfig) -> FlightRecorder {
        let capacity = config.capacity.max(2);
        FlightRecorder {
            registry,
            interval: config.interval,
            capacity,
            inner: Mutex::new(Inner {
                // The sentinel count forces the first sample() to build
                // the schema and allocate the ring.
                schema: Schema {
                    names: Vec::new(),
                    cells: Vec::new(),
                    registry_metrics: usize::MAX,
                },
                frames: Vec::new(),
                head: 0,
                len: 0,
                next_seq: 0,
            }),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently retained (≤ capacity).
    pub fn frames(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    /// Number of series being sampled per frame.
    pub fn series(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .schema
            .cells
            .len()
    }

    /// Takes one sample of every registered metric into the ring.
    ///
    /// If metrics were registered since the last sample, the schema is
    /// rebuilt and the ring reset (frames with different series sets
    /// cannot be compared); otherwise this allocates nothing — it writes
    /// the new values into the preallocated frame in place.
    pub fn sample(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.schema.registry_metrics != self.registry.metric_count() {
            inner.schema = build_schema(&self.registry);
            let series = inner.schema.cells.len();
            let capacity = self.capacity;
            inner.frames.clear();
            for _ in 0..capacity {
                inner.frames.push(Frame {
                    seq: 0,
                    unix_ms: 0,
                    values: vec![0.0; series],
                });
            }
            inner.head = 0;
            inner.len = 0;
        }
        let slot = inner.head;
        let seq = inner.next_seq;
        let unix_ms = unix_ms_now();
        let inner = &mut *inner;
        let frame = &mut inner.frames[slot];
        frame.seq = seq;
        frame.unix_ms = unix_ms;
        for (value, cell) in frame.values.iter_mut().zip(&inner.schema.cells) {
            *value = cell.read();
        }
        inner.next_seq += 1;
        inner.head = (inner.head + 1) % self.capacity;
        inner.len = (inner.len + 1).min(self.capacity);
    }

    /// Exports the most recent `last_n` frames (all retained frames when
    /// larger) as a self-describing JSON document:
    ///
    /// ```json
    /// {
    ///   "interval_seconds": 0.25,
    ///   "capacity": 256,
    ///   "frames": 3,
    ///   "seq": [41, 42, 43],
    ///   "unix_ms": [...],
    ///   "series": [
    ///     {"name": "server_events_ingested_total", "kind": "counter",
    ///      "samples": [100.0, 160.0, 220.0],
    ///      "rate_per_second": [240.0, 240.0]},
    ///     ...
    ///   ]
    /// }
    /// ```
    ///
    /// `rate_per_second[i]` is the derivative between frames `i` and
    /// `i+1` (one shorter than `samples`): clamped at zero for monotone
    /// series (counters, histogram counts/sums), signed for gauges. The
    /// elapsed time comes from the frame timestamps, falling back to the
    /// configured interval when they coincide.
    pub fn window_json(&self, last_n: usize) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let n = last_n.min(inner.len);
        // Chronological (oldest→newest) indices of the last n frames.
        let indices: Vec<usize> = (0..n)
            .map(|i| (inner.head + self.capacity - n + i) % self.capacity)
            .collect();
        let mut out = String::with_capacity(256 + n * inner.schema.cells.len() * 8);
        out.push_str(&format!(
            "{{\"interval_seconds\":{},\"capacity\":{},\"frames\":{n},\"seq\":[",
            json_num(self.interval.as_secs_f64()),
            self.capacity
        ));
        for (i, &idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&inner.frames[idx].seq.to_string());
        }
        out.push_str("],\"unix_ms\":[");
        for (i, &idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&inner.frames[idx].unix_ms.to_string());
        }
        out.push_str("],\"series\":[");
        for (series_idx, (name, cell)) in inner
            .schema
            .names
            .iter()
            .zip(&inner.schema.cells)
            .enumerate()
        {
            if series_idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"kind\":\"{}\",\"samples\":[",
                serde_json::to_string(name).unwrap_or_else(|_| "\"\"".to_string()),
                cell.kind()
            ));
            for (i, &idx) in indices.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_num(inner.frames[idx].values[series_idx]));
            }
            out.push_str("],\"rate_per_second\":[");
            for (i, pair) in indices.windows(2).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let (a, b) = (&inner.frames[pair[0]], &inner.frames[pair[1]]);
                let dt = (b.unix_ms.saturating_sub(a.unix_ms)) as f64 / 1000.0;
                let dt = if dt > 0.0 {
                    dt
                } else {
                    self.interval.as_secs_f64().max(1e-9)
                };
                let mut dv = b.values[series_idx] - a.values[series_idx];
                if cell.monotone() {
                    dv = dv.max(0.0);
                }
                out.push_str(&json_num(dv / dt));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with(capacity: usize) -> (Registry, FlightRecorder) {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(
            registry.clone(),
            RecorderConfig {
                interval: Duration::from_millis(10),
                capacity,
            },
        );
        (registry, recorder)
    }

    #[test]
    fn samples_accumulate_and_ring_wraps() {
        let (registry, recorder) = recorder_with(4);
        let c = registry.counter("ticks_total");
        for i in 0..10 {
            c.add(i);
            recorder.sample();
        }
        assert_eq!(recorder.frames(), 4, "ring capped at capacity");
        let window = recorder.window_json(usize::MAX);
        // Last 4 seq values survive, in order.
        assert!(window.contains("\"seq\":[6,7,8,9]"), "{window}");
        assert!(window.contains("\"frames\":4"), "{window}");
    }

    #[test]
    fn window_respects_last_n() {
        let (registry, recorder) = recorder_with(8);
        registry.counter("c_total");
        for _ in 0..5 {
            recorder.sample();
        }
        let window = recorder.window_json(2);
        assert!(window.contains("\"frames\":2"), "{window}");
        assert!(window.contains("\"seq\":[3,4]"), "{window}");
        let empty = FlightRecorder::new(Registry::new(), RecorderConfig::default());
        let window = empty.window_json(16);
        assert!(window.contains("\"frames\":0"), "{window}");
        assert!(window.contains("\"series\":[]"), "{window}");
    }

    #[test]
    fn counter_rates_are_non_negative_and_gauges_signed() {
        let (registry, recorder) = recorder_with(8);
        let c = registry.counter("events_total");
        let g = registry.gauge("depth");
        c.add(100);
        g.set(5.0);
        recorder.sample();
        c.add(50);
        g.set(2.0);
        recorder.sample();
        let window = recorder.window_json(usize::MAX);
        // With identical-or-later timestamps the rate is positive for the
        // counter and negative for the gauge.
        let series_start = window.find("\"name\":\"depth\"").expect("gauge series");
        let gauge_rates = &window[series_start..];
        let rate_part = gauge_rates
            .split("\"rate_per_second\":[")
            .nth(1)
            .unwrap()
            .split(']')
            .next()
            .unwrap();
        let rate: f64 = rate_part.parse().expect("one gauge rate");
        assert!(rate < 0.0, "gauge derivative is signed: {rate}");

        let counter_start = window.find("\"name\":\"events_total\"").expect("counter");
        let counter_rates = &window[counter_start..];
        let rate_part = counter_rates
            .split("\"rate_per_second\":[")
            .nth(1)
            .unwrap()
            .split(']')
            .next()
            .unwrap();
        let rate: f64 = rate_part.parse().expect("one counter rate");
        assert!(rate > 0.0, "counter rate positive: {rate}");
    }

    #[test]
    fn histograms_contribute_count_and_sum_series() {
        let (registry, recorder) = recorder_with(4);
        let h = registry.histogram_with_bounds("op_seconds", &[1.0]);
        h.observe(0.5);
        h.observe(0.25);
        recorder.sample();
        assert_eq!(recorder.series(), 2);
        let window = recorder.window_json(usize::MAX);
        assert!(window.contains("\"name\":\"op_seconds_count\""), "{window}");
        assert!(window.contains("\"name\":\"op_seconds_sum\""), "{window}");
        assert!(window.contains("\"kind\":\"histogram_count\""), "{window}");
        assert!(window.contains("\"samples\":[2]"), "{window}");
        assert!(window.contains("\"samples\":[0.75]"), "{window}");
    }

    #[test]
    fn labeled_histogram_names_attach_suffix_to_family() {
        let (registry, recorder) = recorder_with(4);
        registry.histogram_labeled_with_bounds("req_seconds", &[("ep", "scores")], &[1.0]);
        recorder.sample();
        let window = recorder.window_json(usize::MAX);
        assert!(
            window.contains("req_seconds_count{ep=\\\"scores\\\"}")
                || window.contains("req_seconds_count{ep=\"scores\"}"),
            "{window}"
        );
    }

    #[test]
    fn schema_rebuild_on_new_registration_resets_ring() {
        let (registry, recorder) = recorder_with(8);
        registry.counter("a_total");
        recorder.sample();
        recorder.sample();
        assert_eq!(recorder.frames(), 2);
        registry.counter("b_total");
        recorder.sample();
        assert_eq!(
            recorder.frames(),
            1,
            "new registration invalidates old frames"
        );
        assert_eq!(recorder.series(), 2);
        let window = recorder.window_json(usize::MAX);
        assert!(window.contains("\"name\":\"b_total\""), "{window}");
        // Seq keeps counting across rebuilds.
        assert!(window.contains("\"seq\":[2]"), "{window}");
    }

    #[test]
    fn window_json_is_parseable() {
        let (registry, recorder) = recorder_with(4);
        registry.counter("c_total").add(3);
        registry.gauge("g").set(f64::NAN);
        registry
            .histogram_with_bounds("h_seconds", &[0.5])
            .observe(0.1);
        recorder.sample();
        recorder.sample();
        let window = recorder.window_json(usize::MAX);
        let parsed: serde_json::Value = serde_json::from_str(&window).expect("window parses");
        let text = serde_json::to_string(&parsed).unwrap();
        assert!(text.contains("interval_seconds"));
        assert!(window.contains("null"), "NaN gauge renders as null");
    }
}
