//! Structured event log: typed [`Event`] records and the JSONL
//! [`EventSink`] they flow into.
//!
//! Events are the low-frequency, high-information complement to the
//! registry's aggregates: one record per detection verdict, eviction
//! storm, or EigenTrust convergence, each rendered as a single JSON line
//! (`{"event": "...", ...}`).
//!
//! The vendored serde derive cannot handle data-carrying enum variants, so
//! [`Event`] implements `Serialize`/`Deserialize` by hand against the
//! `Value` data model, using an `"event"` tag field.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use parking_lot::RwLock;
use serde::{Deserialize, Error, Serialize, Value};

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The detector flagged a rater→ratee pair.
    DetectionVerdict {
        /// Simulation/update cycle the verdict belongs to (0-based).
        cycle: u64,
        /// Flagged rater node id.
        rater: u32,
        /// Rated node id.
        ratee: u32,
        /// Matched behavior tags, each one of `"B1"`–`"B4"`.
        behaviors: Vec<String>,
        /// Social closeness Ωc at detection time.
        omega_c: f64,
        /// Interest similarity Ωs at detection time.
        omega_s: f64,
    },
    /// The coefficient cache dropped a large batch of entries at once.
    EvictionStorm {
        /// Number of entries dropped in the batch.
        evicted: u64,
        /// Whether this was a full flush (structural/global invalidation)
        /// rather than a dirty-neighborhood eviction.
        full_flush: bool,
    },
    /// One EigenTrust power-iteration run completed.
    EigenTrustConvergence {
        /// Update cycle (0-based, counted per system instance).
        cycle: u64,
        /// Power iterations until `‖t⁽ᵏ⁾ − t⁽ᵏ⁻¹⁾‖₁ < ε` (or the cap).
        iterations: u64,
        /// Final L1 residual when iteration stopped.
        residual: f64,
        /// Whether the run started from the previous cycle's trust vector.
        warm_start: bool,
    },
    /// A structural flush forced a full CSR-snapshot rebuild: the social
    /// graph changed structurally (edge add/remove or whole-state reset)
    /// since the previous snapshot, so the incremental row-patch path could
    /// not be taken.
    SnapshotRebuild {
        /// Number of nodes the dirty log reported touched since the
        /// superseded snapshot's epoch.
        dirty_nodes: u64,
    },
}

impl Event {
    /// The `"event"` tag this record serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DetectionVerdict { .. } => "detection_verdict",
            Event::EvictionStorm { .. } => "eviction_storm",
            Event::EigenTrustConvergence { .. } => "eigentrust_convergence",
            Event::SnapshotRebuild { .. } => "snapshot_rebuild",
        }
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("event".to_string(), Value::Str(self.kind().to_string()))];
        match self {
            Event::DetectionVerdict {
                cycle,
                rater,
                ratee,
                behaviors,
                omega_c,
                omega_s,
            } => {
                fields.push(("cycle".into(), Value::U64(*cycle)));
                fields.push(("rater".into(), Value::U64(u64::from(*rater))));
                fields.push(("ratee".into(), Value::U64(u64::from(*ratee))));
                fields.push((
                    "behaviors".into(),
                    Value::Seq(behaviors.iter().map(|b| Value::Str(b.clone())).collect()),
                ));
                fields.push(("omega_c".into(), Value::F64(*omega_c)));
                fields.push(("omega_s".into(), Value::F64(*omega_s)));
            }
            Event::EvictionStorm {
                evicted,
                full_flush,
            } => {
                fields.push(("evicted".into(), Value::U64(*evicted)));
                fields.push(("full_flush".into(), Value::Bool(*full_flush)));
            }
            Event::EigenTrustConvergence {
                cycle,
                iterations,
                residual,
                warm_start,
            } => {
                fields.push(("cycle".into(), Value::U64(*cycle)));
                fields.push(("iterations".into(), Value::U64(*iterations)));
                fields.push(("residual".into(), Value::F64(*residual)));
                fields.push(("warm_start".into(), Value::Bool(*warm_start)));
            }
            Event::SnapshotRebuild { dirty_nodes } => {
                fields.push(("dirty_nodes".into(), Value::U64(*dirty_nodes)));
            }
        }
        Value::Object(fields)
    }
}

fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    value
        .get(name)
        .ok_or_else(|| Error::custom(format!("Event missing field `{name}`")))
}

fn f64_field(value: &Value, name: &str) -> Result<f64, Error> {
    field(value, name)?
        .as_f64()
        .ok_or_else(|| Error::custom(format!("Event field `{name}` is not a number")))
}

fn u64_field(value: &Value, name: &str) -> Result<u64, Error> {
    field(value, name)?
        .as_u64()
        .ok_or_else(|| Error::custom(format!("Event field `{name}` is not an unsigned integer")))
}

fn bool_field(value: &Value, name: &str) -> Result<bool, Error> {
    field(value, name)?
        .as_bool()
        .ok_or_else(|| Error::custom(format!("Event field `{name}` is not a bool")))
}

impl Deserialize for Event {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let kind = field(value, "event")?
            .as_str()
            .ok_or_else(|| Error::custom("Event tag `event` is not a string"))?;
        match kind {
            "detection_verdict" => {
                let behaviors = field(value, "behaviors")?
                    .as_array()
                    .ok_or_else(|| Error::custom("`behaviors` is not an array"))?
                    .iter()
                    .map(|b| {
                        b.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| Error::custom("behavior tag is not a string"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Event::DetectionVerdict {
                    cycle: u64_field(value, "cycle")?,
                    rater: u32::try_from(u64_field(value, "rater")?)
                        .map_err(|_| Error::custom("`rater` out of range for u32"))?,
                    ratee: u32::try_from(u64_field(value, "ratee")?)
                        .map_err(|_| Error::custom("`ratee` out of range for u32"))?,
                    behaviors,
                    omega_c: f64_field(value, "omega_c")?,
                    omega_s: f64_field(value, "omega_s")?,
                })
            }
            "eviction_storm" => Ok(Event::EvictionStorm {
                evicted: u64_field(value, "evicted")?,
                full_flush: bool_field(value, "full_flush")?,
            }),
            "eigentrust_convergence" => Ok(Event::EigenTrustConvergence {
                cycle: u64_field(value, "cycle")?,
                iterations: u64_field(value, "iterations")?,
                residual: f64_field(value, "residual")?,
                warm_start: bool_field(value, "warm_start")?,
            }),
            "snapshot_rebuild" => Ok(Event::SnapshotRebuild {
                dirty_nodes: u64_field(value, "dirty_nodes")?,
            }),
            other => Err(Error::custom(format!("unknown event kind {other:?}"))),
        }
    }
}

enum SinkKind {
    /// Emits are no-ops. The default for uninstrumented runs.
    Disabled,
    /// Events are buffered in memory (for export/testing).
    Memory(RwLock<Vec<Event>>),
    /// Events are written as JSON lines to a writer.
    Writer(WriterSink),
}

/// A writer-backed sink destination. A `std::sync::Mutex` rather than the
/// workspace `RwLock` because `Box<dyn Write + Send>` is not `Sync`, and
/// `Mutex<T: Send>` is.
struct WriterSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    /// Duplicated handle onto the backing file, kept so the drop path can
    /// `sync_all` after the buffered writer flushes. `None` for sinks over
    /// arbitrary writers, where there is nothing to fsync.
    file: Option<File>,
}

impl Drop for WriterSink {
    /// Flush buffered lines and (for file-backed sinks) fsync, so a sink
    /// that is simply dropped — e.g. at the end of a CLI run — still leaves
    /// a complete, parseable JSONL file behind. Errors are swallowed:
    /// telemetry teardown must never panic the host.
    fn drop(&mut self) {
        if let Ok(w) = self.writer.get_mut() {
            let _ = w.flush();
        }
        if let Some(file) = &self.file {
            let _ = file.sync_all();
        }
    }
}

/// A cheaply clonable destination for [`Event`]s.
///
/// Emitting is fallible only in the I/O sense; write errors are swallowed
/// (telemetry must never crash the host pipeline) — callers that care can
/// [`EventSink::flush`] and inspect the result.
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<SinkKind>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &*self.inner {
            SinkKind::Disabled => "disabled",
            SinkKind::Memory(_) => "memory",
            SinkKind::Writer(_) => "writer",
        };
        f.debug_struct("EventSink").field("kind", &kind).finish()
    }
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::disabled()
    }
}

impl EventSink {
    /// A sink that drops every event. Emitting is a single `match` on an
    /// `Arc`, so instrumented code need not special-case "telemetry off".
    pub fn disabled() -> Self {
        EventSink {
            inner: Arc::new(SinkKind::Disabled),
        }
    }

    /// A sink that buffers events in memory, retrievable via
    /// [`EventSink::events`].
    pub fn in_memory() -> Self {
        EventSink {
            inner: Arc::new(SinkKind::Memory(RwLock::new(Vec::new()))),
        }
    }

    /// A sink that writes one JSON line per event to `writer`. Buffered
    /// lines are flushed when the last clone of the sink drops.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        EventSink {
            inner: Arc::new(SinkKind::Writer(WriterSink {
                writer: Mutex::new(BufWriter::new(writer)),
                file: None,
            })),
        }
    }

    /// A sink that writes one JSON line per event to the file at `path`
    /// (created/truncated). When the last clone drops, the buffer is
    /// flushed and the file fsynced, so the final line is always complete
    /// on disk even without an explicit [`EventSink::flush`].
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        // A failed dup only costs the fsync-on-drop; flushing still works.
        let sync_handle = file.try_clone().ok();
        Ok(EventSink {
            inner: Arc::new(SinkKind::Writer(WriterSink {
                writer: Mutex::new(BufWriter::new(Box::new(file))),
                file: sync_handle,
            })),
        })
    }

    /// Whether emitted events go anywhere. Lets callers skip building
    /// expensive event payloads when nobody is listening.
    pub fn is_enabled(&self) -> bool {
        !matches!(&*self.inner, SinkKind::Disabled)
    }

    /// Records one event.
    pub fn emit(&self, event: Event) {
        match &*self.inner {
            SinkKind::Disabled => {}
            SinkKind::Memory(buf) => buf.write().push(event),
            SinkKind::Writer(sink) => {
                if let Ok(line) = serde_json::to_string(&event) {
                    if let Ok(mut w) = sink.writer.lock() {
                        let _ = w.write_all(line.as_bytes());
                        let _ = w.write_all(b"\n");
                    }
                }
            }
        }
    }

    /// A copy of the buffered events (empty for non-memory sinks).
    pub fn events(&self) -> Vec<Event> {
        match &*self.inner {
            SinkKind::Memory(buf) => buf.read().clone(),
            _ => Vec::new(),
        }
    }

    /// Flushes a writer-backed sink; no-op otherwise.
    pub fn flush(&self) -> std::io::Result<()> {
        match &*self.inner {
            SinkKind::Writer(sink) => sink
                .writer
                .lock()
                .map_err(|_| std::io::Error::other("event sink writer lock poisoned"))?
                .flush(),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::DetectionVerdict {
                cycle: 3,
                rater: 17,
                ratee: 4,
                behaviors: vec!["B1".into(), "B3".into()],
                omega_c: 0.0,
                omega_s: 0.125,
            },
            Event::EvictionStorm {
                evicted: 4096,
                full_flush: true,
            },
            Event::EigenTrustConvergence {
                cycle: 3,
                iterations: 12,
                residual: 4.2e-7,
                warm_start: true,
            },
            Event::SnapshotRebuild { dirty_nodes: 37 },
        ]
    }

    #[test]
    fn events_roundtrip_through_json() {
        for event in sample_events() {
            let line = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn serialized_events_carry_the_kind_tag() {
        for event in sample_events() {
            let line = serde_json::to_string(&event).unwrap();
            let value: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(
                value.get("event").and_then(Value::as_str),
                Some(event.kind())
            );
        }
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = EventSink::in_memory();
        assert!(sink.is_enabled());
        for event in sample_events() {
            sink.emit(event);
        }
        assert_eq!(sink.events(), sample_events());
        // Clones share the buffer.
        assert_eq!(sink.clone().events().len(), sample_events().len());
    }

    #[test]
    fn disabled_sink_drops_everything() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(Event::EvictionStorm {
            evicted: 1,
            full_flush: false,
        });
        assert!(sink.events().is_empty());
    }

    #[test]
    fn writer_sink_emits_jsonl() {
        let dir = std::env::temp_dir().join("socialtrust-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        {
            let sink = EventSink::to_file(&path).unwrap();
            for event in sample_events() {
                sink.emit(event);
            }
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_sink_leaves_complete_last_line() {
        let dir = std::env::temp_dir().join("socialtrust-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-drop-{}.jsonl", std::process::id()));
        {
            // Two clones: the buffer must survive until the *last* one goes.
            let sink = EventSink::to_file(&path).unwrap();
            let clone = sink.clone();
            for event in sample_events() {
                sink.emit(event);
            }
            drop(sink);
            drop(clone);
            // No explicit flush() — the Drop impl is on the hook.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "last line must be newline-terminated");
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
        assert_eq!(parsed.last(), sample_events().last());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_event_kind_is_rejected() {
        let err = serde_json::from_str::<Event>(r#"{"event":"wat"}"#);
        assert!(err.is_err());
    }
}
