//! Export formats: Prometheus text exposition, a line-format validator,
//! and the combined [`MetricsExport`] JSON document written by
//! `--metrics-out`.

use serde::{Deserialize, Serialize};

use crate::event::Event;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::Telemetry;

/// Renders an `f64` the way Prometheus expects sample values: `+Inf`,
/// `-Inf`, `NaN`, or a plain decimal.
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    }
}

/// Quantiles exported per histogram family, as `{quantile="pXX"}` gauge
/// samples in the exposition and a `quantiles` map in the JSON bundle.
pub const EXPORT_QUANTILES: &[(&str, f64)] = &[("p50", 0.5), ("p95", 0.95), ("p99", 0.99)];

/// Splits a registry key into its family name and the inner label list
/// (without braces): `m{a="1"}` → `("m", Some("a=\"1\""))`, `m` →
/// `("m", None)`.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((family, rest)) => (family, Some(rest.strip_suffix('}').unwrap_or(rest))),
        None => (key, None),
    }
}

/// Appends `extra` (e.g. `le="0.5"`) to an optional inner label list,
/// producing a full `{...}` suffix.
fn merge_labels(inner: Option<&str>, extra: &str) -> String {
    match inner {
        Some(inner) if !inner.is_empty() => format!("{{{inner},{extra}}}"),
        _ => format!("{{{extra}}}"),
    }
}

/// Renders one histogram series. `inner` is the series' own label list
/// (without braces), merged ahead of the synthetic `le=`/`quantile=`
/// labels on each sample line.
fn render_histogram(out: &mut String, family: &str, inner: Option<&str>, h: &HistogramSnapshot) {
    let own = match inner {
        Some(inner) if !inner.is_empty() => format!("{{{inner}}}"),
        _ => String::new(),
    };
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds.iter().zip(&h.counts) {
        cumulative += count;
        out.push_str(&format!(
            "{family}_bucket{} {cumulative}\n",
            merge_labels(inner, &format!("le=\"{}\"", render_value(*bound)))
        ));
    }
    out.push_str(&format!(
        "{family}_bucket{} {}\n",
        merge_labels(inner, "le=\"+Inf\""),
        h.count
    ));
    out.push_str(&format!("{family}_sum{own} {}\n", render_value(h.sum)));
    out.push_str(&format!("{family}_count{own} {}\n", h.count));
    // EXPORT_QUANTILES is sorted by label value, so the `quantile=` sample
    // lines come out ordered by label set within the series.
    for (label, q) in EXPORT_QUANTILES {
        if let Some(v) = h.quantile(*q) {
            out.push_str(&format!(
                "{family}{} {}\n",
                merge_labels(inner, &format!("quantile=\"{label}\"")),
                render_value(v)
            ));
        }
    }
}

/// One metric series to render, borrowed from a [`Snapshot`].
enum Series<'a> {
    Counter(u64),
    Gauge(f64),
    Histogram(&'a HistogramSnapshot),
}

impl Series<'_> {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// Renders a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4). Series are grouped by family (label sets of one
/// family are contiguous, unlabeled series first, then label sets in
/// lexicographic order) with one `# TYPE` line per family; within a
/// histogram series, samples appear in a fixed order (buckets by
/// ascending `le`, then `_sum`/`_count`, then `quantile="pXX"` gauges).
/// Two renderings of equal snapshots are byte-identical. Histograms
/// expose cumulative `_bucket{le="..."}` samples plus `_sum`/`_count`
/// and estimated [`EXPORT_QUANTILES`]; a labeled histogram's own labels
/// are merged ahead of the synthetic `le=`/`quantile=` labels.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    // (family, label list) pairs; sorting on the pair keeps a family's
    // series contiguous even when another family's name extends it
    // (`abc{...}` vs `abcd`).
    let mut series: Vec<(&str, Option<&str>, Series<'_>)> = Vec::new();
    for (key, value) in &snapshot.counters {
        let (family, inner) = split_key(key);
        series.push((family, inner, Series::Counter(*value)));
    }
    for (key, value) in &snapshot.gauges {
        let (family, inner) = split_key(key);
        series.push((family, inner, Series::Gauge(*value)));
    }
    for (key, h) in &snapshot.histograms {
        let (family, inner) = split_key(key);
        series.push((family, inner, Series::Histogram(h)));
    }
    series.sort_by_key(|(family, inner, _)| (*family, *inner));

    let mut out = String::new();
    let mut last_type: Option<(&str, &'static str)> = None;
    for (family, inner, series) in series {
        if last_type != Some((family, series.kind())) {
            out.push_str(&format!("# TYPE {family} {}\n", series.kind()));
            last_type = Some((family, series.kind()));
        }
        let own = match inner {
            Some(inner) if !inner.is_empty() => format!("{{{inner}}}"),
            _ => String::new(),
        };
        match series {
            Series::Counter(value) => {
                out.push_str(&format!("{family}{own} {value}\n"));
            }
            Series::Gauge(value) => {
                out.push_str(&format!("{family}{own} {}\n", render_value(value)));
            }
            Series::Histogram(h) => render_histogram(&mut out, family, inner, h),
        }
    }
    out
}

fn parse_sample_value(raw: &str) -> Option<f64> {
    match raw {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

/// One parsed exposition sample line:
/// `name[{label="value",...}] value`. The synthetic `le=`/`quantile=`
/// labels are pulled out; the remaining labels are kept for grouping.
struct Sample {
    name: String,
    /// Labels other than `le`/`quantile`, in line order.
    labels: Vec<(String, String)>,
    le: Option<f64>,
    quantile: Option<String>,
    value: f64,
}

impl Sample {
    /// A normalized rendering of the non-synthetic labels, used to group
    /// the series of one (family × label set) together regardless of
    /// label order on the line.
    fn label_group(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.labels.iter().collect();
        pairs.sort();
        pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let (name_part, value_part) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("line {lineno}: no sample value in {line:?}"))?;
    let value = parse_sample_value(value_part.trim())
        .ok_or_else(|| format!("line {lineno}: bad sample value {value_part:?}"))?;
    let mut labels = Vec::new();
    let mut le = None;
    let mut quantile = None;
    let name = match name_part.split_once('{') {
        None => name_part.to_string(),
        Some((name, rest)) => {
            let rest = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("line {lineno}: unterminated label set in {line:?}"))?;
            // Registration forbids commas inside label values, so a plain
            // comma split recovers the pairs the renderer joined.
            for pair in rest.split(',') {
                let (key, raw) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: malformed label {pair:?}"))?;
                let val = raw
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: unquoted label value {raw:?}"))?;
                match key {
                    "le" => {
                        let bound = parse_sample_value(val)
                            .ok_or_else(|| format!("line {lineno}: bad le bound {val:?}"))?;
                        le = Some(bound);
                    }
                    "quantile" => {
                        if val.is_empty() {
                            return Err(format!("line {lineno}: empty quantile label"));
                        }
                        quantile = Some(val.to_string());
                    }
                    other => {
                        if !crate::registry::is_valid_label_name(other) {
                            return Err(format!("line {lineno}: invalid label name {other:?}"));
                        }
                        labels.push((other.to_string(), val.to_string()));
                    }
                }
            }
            if le.is_some() && quantile.is_some() {
                return Err(format!(
                    "line {lineno}: both le= and quantile= on one sample"
                ));
            }
            name.to_string()
        }
    };
    if !crate::registry::is_valid_metric_name(&name) {
        return Err(format!("line {lineno}: invalid metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        le,
        quantile,
        value,
    })
}

/// A histogram series key: the metric family plus the label group other
/// than `le` (two strings), mapped to the series' accumulated samples.
type SeriesKey = (String, String);

/// Validates Prometheus text-exposition output line by line:
///
/// * every non-comment line parses as `name[{label="value",...}] value`;
/// * every metric name matches `[a-zA-Z_:][a-zA-Z0-9_:]*` and every
///   label name matches `[a-zA-Z_][a-zA-Z0-9_]*`;
/// * histogram bucket series — grouped by family **and** the labels
///   other than `le` — have non-decreasing cumulative counts with
///   strictly increasing bounds, ending in a `+Inf` bucket;
/// * each histogram series' `+Inf` bucket equals its `_count` sample
///   with the same label set;
/// * `quantile` samples never appear on `_bucket` series, and no sample
///   carries both `le=` and `quantile=`.
///
/// Returns the number of sample lines validated.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    // (family, label group) -> (bound, cumulative count) pairs seen, for
    // `*_bucket` series.
    let mut buckets: Vec<(SeriesKey, Vec<(f64, f64)>)> = Vec::new();
    let mut counts: Vec<((String, String), f64)> = Vec::new();
    let mut samples = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        samples += 1;
        if let Some(bound) = sample.le {
            let base = sample
                .name
                .strip_suffix("_bucket")
                .ok_or_else(|| format!("line {lineno}: le label on non-bucket sample"))?
                .to_string();
            let group = (base, sample.label_group());
            match buckets.iter_mut().find(|(g, _)| *g == group) {
                Some((_, series)) => series.push((bound, sample.value)),
                None => buckets.push((group, vec![(bound, sample.value)])),
            }
        } else if sample.quantile.is_some() {
            if sample.name.ends_with("_bucket") {
                return Err(format!(
                    "line {lineno}: quantile label on bucket sample {:?}",
                    sample.name
                ));
            }
        } else if let Some(base) = sample.name.strip_suffix("_count") {
            counts.push(((base.to_string(), sample.label_group()), sample.value));
        }
    }

    for ((base, labels), series) in &buckets {
        let shown = if labels.is_empty() {
            base.clone()
        } else {
            format!("{base}{{{labels}}}")
        };
        for pair in series.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!(
                    "histogram {shown}: bucket bounds not strictly increasing ({} then {})",
                    pair[0].0, pair[1].0
                ));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!(
                    "histogram {shown}: cumulative bucket counts decrease at le={}",
                    pair[1].0
                ));
            }
        }
        let last = series
            .last()
            .ok_or_else(|| format!("histogram {shown}: empty bucket series"))?;
        if last.0 != f64::INFINITY {
            return Err(format!("histogram {shown}: missing +Inf bucket"));
        }
        let count = counts
            .iter()
            .find(|((n, l), _)| n == base && l == labels)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("histogram {shown}: missing _count sample"))?;
        if last.1 != count {
            return Err(format!(
                "histogram {shown}: +Inf bucket {} != count {count}",
                last.1
            ));
        }
    }
    Ok(samples)
}

/// The document written by `--metrics-out`: the Prometheus rendering, the
/// structured snapshot, and every buffered event, in one JSON file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsExport {
    /// Prometheus text exposition of `metrics`.
    pub prometheus: String,
    /// Structured snapshot of every registered metric.
    pub metrics: Snapshot,
    /// Estimated [`EXPORT_QUANTILES`] per non-empty histogram family
    /// (`family → quantile label → value`), mirroring the
    /// `{quantile="pXX"}` samples in `prometheus`.
    pub quantiles: std::collections::BTreeMap<String, std::collections::BTreeMap<String, f64>>,
    /// Buffered structured events, in emission order.
    pub events: Vec<Event>,
}

/// Estimated [`EXPORT_QUANTILES`] for every non-empty histogram in
/// `snapshot`, keyed family → quantile label.
pub fn histogram_quantiles(
    snapshot: &Snapshot,
) -> std::collections::BTreeMap<String, std::collections::BTreeMap<String, f64>> {
    snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let per_family: std::collections::BTreeMap<String, f64> = EXPORT_QUANTILES
                .iter()
                .filter_map(|(label, q)| h.quantile(*q).map(|v| (label.to_string(), v)))
                .collect();
            (!per_family.is_empty()).then(|| (name.clone(), per_family))
        })
        .collect()
}

impl MetricsExport {
    /// Collects the current registry snapshot and buffered events from
    /// `telemetry` into an export document.
    pub fn collect(telemetry: &Telemetry) -> MetricsExport {
        let metrics = telemetry.registry().snapshot();
        MetricsExport {
            prometheus: prometheus_text(&metrics),
            quantiles: histogram_quantiles(&metrics),
            metrics,
            events: telemetry.sink().events(),
        }
    }

    /// Serializes the export as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MetricsExport serialization is infallible")
    }

    /// Writes the export as pretty JSON to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated_registry() -> Registry {
        let r = Registry::new();
        r.counter("cache_hits_total").add(10);
        r.counter("cache_misses_total").add(3);
        r.gauge("eigentrust_residual").set(1.25e-7);
        let h = r.histogram_with_bounds("detect_seconds", &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.004, 0.05, 2.0] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn exposition_round_trips_through_validator() {
        let text = prometheus_text(&populated_registry().snapshot());
        let samples = validate_exposition(&text).expect("valid exposition");
        // 2 counters + 1 gauge + (3 buckets + Inf + sum + count) + 3 quantiles.
        assert_eq!(samples, 12);
        assert!(text.contains("# TYPE detect_seconds histogram\n"));
        assert!(text.contains("detect_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("cache_hits_total 10\n"));
        assert!(text.contains("detect_seconds{quantile=\"p50\"}"));
        assert!(text.contains("detect_seconds{quantile=\"p95\"}"));
        assert!(text.contains("detect_seconds{quantile=\"p99\"}"));
    }

    #[test]
    fn exposition_is_sorted_by_family_then_label_set() {
        let r = Registry::new();
        // Registration order deliberately scrambled relative to name order.
        r.histogram_with_bounds("m_hist_seconds", &[0.5])
            .observe(0.1);
        r.counter("z_total").add(1);
        r.gauge("a_gauge").set(2.0);
        r.counter("b_total").add(4);
        let text = prometheus_text(&r.snapshot());
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|rest| rest.split(' ').next())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "families must be in name order");
        // Within the histogram family: buckets, +Inf, sum, count, quantiles.
        let hist_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("m_hist_seconds"))
            .collect();
        assert!(hist_lines[0].starts_with("m_hist_seconds_bucket{le=\"0.5\"}"));
        assert!(hist_lines[1].starts_with("m_hist_seconds_bucket{le=\"+Inf\"}"));
        assert!(hist_lines[2].starts_with("m_hist_seconds_sum"));
        assert!(hist_lines[3].starts_with("m_hist_seconds_count"));
        assert!(hist_lines[4].starts_with("m_hist_seconds{quantile=\"p50\"}"));
        assert!(hist_lines[5].starts_with("m_hist_seconds{quantile=\"p95\"}"));
        assert!(hist_lines[6].starts_with("m_hist_seconds{quantile=\"p99\"}"));
        // Renders are deterministic: equal snapshots → identical bytes.
        assert_eq!(text, prometheus_text(&r.snapshot()));
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn labeled_series_render_and_validate() {
        let r = Registry::new();
        r.counter("http_requests_total").add(7);
        r.counter_labeled(
            "http_requests_total",
            &[("endpoint", "scores"), ("status", "2xx")],
        )
        .add(5);
        r.counter_labeled(
            "http_requests_total",
            &[("endpoint", "healthz"), ("status", "2xx")],
        )
        .add(2);
        let ha = r.histogram_labeled_with_bounds(
            "http_request_seconds",
            &[("endpoint", "scores")],
            &[0.5],
        );
        let hb = r.histogram_labeled_with_bounds(
            "http_request_seconds",
            &[("endpoint", "healthz")],
            &[0.5],
        );
        ha.observe(0.1);
        ha.observe(2.0);
        hb.observe(0.2);
        let text = prometheus_text(&r.snapshot());
        validate_exposition(&text).expect("labeled exposition validates");
        assert!(text.contains("http_requests_total 7\n"));
        assert!(text.contains("http_requests_total{endpoint=\"scores\",status=\"2xx\"} 5\n"));
        assert!(text.contains("http_request_seconds_bucket{endpoint=\"scores\",le=\"0.5\"} 1\n"));
        assert!(text.contains("http_request_seconds_bucket{endpoint=\"scores\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("http_request_seconds_sum{endpoint=\"scores\"}"));
        assert!(text.contains("http_request_seconds_count{endpoint=\"healthz\"} 1\n"));
        assert!(text.contains("http_request_seconds{endpoint=\"scores\",quantile=\"p50\"}"));
        // One TYPE line per family, not per label set.
        assert_eq!(
            text.matches("# TYPE http_requests_total counter").count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE http_request_seconds histogram")
                .count(),
            1
        );
        // Unlabeled series leads its family; label sets follow sorted.
        let requests: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("http_requests_total"))
            .collect();
        assert!(requests[0].starts_with("http_requests_total 7"));
        assert!(requests[1].contains("endpoint=\"healthz\""));
        assert!(requests[2].contains("endpoint=\"scores\""));
        assert_eq!(text, prometheus_text(&r.snapshot()), "deterministic");
    }

    #[test]
    fn family_grouping_survives_name_extension() {
        // `abc{...}` sorts after `abcd` as raw strings; grouping must be
        // by (family, labels), keeping each family's series contiguous.
        let r = Registry::new();
        r.counter_labeled("abc_total", &[("k", "v")]).add(1);
        r.counter("abc_total").add(1);
        r.counter("abc_totalx").add(1);
        let text = prometheus_text(&r.snapshot());
        validate_exposition(&text).expect("validates");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE abc_total counter",
                "abc_total 1",
                "abc_total{k=\"v\"} 1",
                "# TYPE abc_totalx counter",
                "abc_totalx 1",
            ]
        );
    }

    #[test]
    fn empty_histogram_emits_no_quantile_samples() {
        let r = Registry::new();
        r.histogram_with_bounds("idle_seconds", &[0.5, 1.0]);
        let text = prometheus_text(&r.snapshot());
        validate_exposition(&text).expect("zeroed histogram validates");
        assert!(text.contains("idle_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("idle_seconds_count 0\n"));
        assert!(
            !text.contains("quantile="),
            "no quantile gauges for an empty histogram: {text}"
        );
        assert!(!text.contains("NaN"), "no NaN samples: {text}");
        assert!(
            histogram_quantiles(&r.snapshot()).is_empty(),
            "no quantiles map entry for an empty histogram"
        );
    }

    #[test]
    fn validator_rejects_quantile_on_bucket_series() {
        let bad = "x_bucket{quantile=\"p50\"} 1\n";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("quantile label on bucket sample"));
    }

    #[test]
    fn export_carries_histogram_quantiles() {
        let telemetry = Telemetry::with_sink(crate::EventSink::in_memory());
        let h = telemetry
            .registry()
            .histogram_with_bounds("detect_seconds", &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.004, 0.05, 2.0] {
            h.observe(v);
        }
        let export = MetricsExport::collect(&telemetry);
        let q = export.quantiles.get("detect_seconds").expect("family");
        assert_eq!(
            q.keys().collect::<Vec<_>>(),
            vec!["p50", "p95", "p99"],
            "all export quantiles present"
        );
        let p50 = q["p50"];
        assert!(
            p50 > 0.001 && p50 <= 0.01 + 1e-12,
            "p50 {p50} in second bucket"
        );
        // The same values appear as exposition samples.
        for (label, v) in q {
            assert!(export.prometheus.contains(&format!(
                "detect_seconds{{quantile=\"{label}\"}} {}",
                super::render_value(*v)
            )));
        }
    }

    #[test]
    fn validator_rejects_non_monotone_buckets() {
        let bad =
            "x_bucket{le=\"1.0\"} 5\nx_bucket{le=\"2.0\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_count 5\n";
        assert!(validate_exposition(bad).unwrap_err().contains("decrease"));
    }

    #[test]
    fn validator_rejects_inf_count_mismatch() {
        let bad = "x_bucket{le=\"1.0\"} 2\nx_bucket{le=\"+Inf\"} 2\nx_count 3\n";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("+Inf bucket 2 != count 3"));
    }

    #[test]
    fn validator_rejects_missing_inf_bucket() {
        let bad = "x_bucket{le=\"1.0\"} 2\nx_count 2\n";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("missing +Inf bucket"));
    }

    #[test]
    fn validator_rejects_bad_names() {
        assert!(validate_exposition("bad-name 1\n").is_err());
        assert!(validate_exposition("1leading 1\n").is_err());
    }

    #[test]
    fn export_roundtrips_through_json() {
        let telemetry = Telemetry::with_sink(crate::EventSink::in_memory());
        telemetry
            .registry()
            .counter("detector_suspicions_total")
            .add(2);
        telemetry.sink().emit(crate::Event::EvictionStorm {
            evicted: 100,
            full_flush: false,
        });
        let export = MetricsExport::collect(&telemetry);
        let text = export.to_json();
        let back: MetricsExport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, export);
        assert!(validate_exposition(&back.prometheus).is_ok());
    }
}
