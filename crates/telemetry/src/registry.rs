//! The global-free metric [`Registry`].
//!
//! A registry is a cheaply clonable handle (`Arc` inside) that hands out
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles by name, get-or-create
//! style. Registration takes a short write lock; the returned handles are
//! lock-free, so hot paths register once and increment forever.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use std::sync::Arc;

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Whether `value` can be stored in a registry key without escaping.
/// The registry stores labeled series under their rendered
/// `family{k="v",...}` key, so values that would need escaping (quotes,
/// backslashes, newlines) or would confuse the label parser (commas,
/// braces) are rejected at registration time.
pub fn is_valid_label_value(value: &str) -> bool {
    value
        .chars()
        .all(|c| !matches!(c, '"' | '\\' | ',' | '{' | '}') && !c.is_control())
}

/// Renders the registry key for `family` with the given label pairs:
/// `family{k1="v1",k2="v2"}` (or just `family` for an empty label set).
/// Labels are rendered in the order given, so call sites must use a
/// consistent order for the same series.
///
/// # Panics
/// Panics on an invalid family name, label name, or label value.
pub fn labeled_key(family: &str, labels: &[(&str, &str)]) -> String {
    assert!(
        is_valid_metric_name(family),
        "invalid metric name {family:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
    if labels.is_empty() {
        return family.to_string();
    }
    let mut key = String::with_capacity(family.len() + 16 * labels.len());
    key.push_str(family);
    key.push('{');
    for (i, (name, value)) in labels.iter().enumerate() {
        assert!(
            is_valid_label_name(name),
            "invalid label name {name:?} on {family:?}: must match [a-zA-Z_][a-zA-Z0-9_]*"
        );
        assert!(
            is_valid_label_value(value),
            "invalid label value {value:?} for {name:?} on {family:?}: \
             quotes, backslashes, commas, braces, and control characters are not allowed"
        );
        if i > 0 {
            key.push(',');
        }
        key.push_str(name);
        key.push_str("=\"");
        key.push_str(value);
        key.push('"');
    }
    key.push('}');
    key
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A live handle to one registered metric, any kind. Returned by
/// [`Registry::metric_handles`] so samplers (the flight recorder) can
/// read every metric without knowing names up front.
#[derive(Clone)]
pub enum MetricHandle {
    /// A counter handle.
    Counter(Counter),
    /// A gauge handle.
    Gauge(Gauge),
    /// A histogram handle.
    Histogram(Histogram),
}

#[derive(Default)]
struct RegistryInner {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// A named collection of metrics. Clones share the same storage.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.inner.metrics.read();
        f.debug_struct("Registry")
            .field("metrics", &metrics.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        self.get_or_insert_key(name.to_string(), make)
    }

    /// `key` must already be validated (a bare name or [`labeled_key`]).
    fn get_or_insert_key(&self, key: String, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.inner.metrics.write();
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use.
    ///
    /// # Panics
    /// Panics if `name` is not a valid metric name or is already registered
    /// as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram registered under `name` with the default
    /// latency buckets, creating it on first use.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &crate::metric::DEFAULT_SECONDS_BUCKETS)
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bucket bounds on first use. An already-registered histogram
    /// keeps its original bounds.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::with_bounds(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the counter for `family` with the given label pairs,
    /// creating it at zero on first use. The series is stored under its
    /// rendered `family{k="v",...}` key, so the same `(family, labels)`
    /// in the same order always returns the same cell.
    ///
    /// # Panics
    /// Panics on an invalid family/label name, an unescapable label
    /// value (see [`is_valid_label_value`]), or kind mismatch.
    pub fn counter_labeled(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        let key = labeled_key(family, labels);
        match self.get_or_insert_key(key.clone(), || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric {key:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge for `family` with the given label pairs,
    /// creating it on first use. See [`Registry::counter_labeled`].
    ///
    /// # Panics
    /// Panics on invalid names/values or kind mismatch.
    pub fn gauge_labeled(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = labeled_key(family, labels);
        match self.get_or_insert_key(key.clone(), || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {key:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram for `family` with the given label pairs and
    /// the default latency buckets, creating it on first use. See
    /// [`Registry::counter_labeled`].
    ///
    /// # Panics
    /// Panics on invalid names/values or kind mismatch.
    pub fn histogram_labeled(&self, family: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_labeled_with_bounds(family, labels, &crate::metric::DEFAULT_SECONDS_BUCKETS)
    }

    /// [`Registry::histogram_labeled`] with explicit bucket bounds. An
    /// already-registered series keeps its original bounds.
    ///
    /// # Panics
    /// Panics on invalid names/values or kind mismatch.
    pub fn histogram_labeled_with_bounds(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let key = labeled_key(family, labels);
        match self.get_or_insert_key(key.clone(), || {
            Metric::Histogram(Histogram::with_bounds(bounds))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {key:?} already registered as a {}", other.kind()),
        }
    }

    /// Names of every registered metric, sorted. Labeled series appear
    /// under their full `family{k="v",...}` key.
    pub fn metric_names(&self) -> Vec<String> {
        self.inner.metrics.read().keys().cloned().collect()
    }

    /// Number of registered metrics. Cheap; the flight recorder uses it
    /// to detect registrations since its last schema build.
    pub fn metric_count(&self) -> usize {
        self.inner.metrics.read().len()
    }

    /// Live handles to every registered metric, sorted by key. Reading
    /// through the handles afterwards takes no registry lock.
    pub fn metric_handles(&self) -> Vec<(String, MetricHandle)> {
        self.inner
            .metrics
            .read()
            .iter()
            .map(|(name, metric)| {
                let handle = match metric {
                    Metric::Counter(c) => MetricHandle::Counter(c.clone()),
                    Metric::Gauge(g) => MetricHandle::Gauge(g.clone()),
                    Metric::Histogram(h) => MetricHandle::Histogram(h.clone()),
                };
                (name.clone(), handle)
            })
            .collect()
    }

    /// Captures a point-in-time [`Snapshot`] of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.read();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_cell() {
        let r = Registry::new();
        let a = r.counter("cache_hits_total");
        let b = r.counter("cache_hits_total");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("cache_hits_total").get(), 4);
        assert!(a.same_cell(&b));
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("c_total").add(2);
        r.gauge("g").set(1.5);
        r.histogram_with_bounds("h_seconds", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c_total"), 2);
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h_seconds").unwrap().count, 1);
        assert_eq!(
            r.metric_names(),
            vec![
                "c_total".to_string(),
                "g".to_string(),
                "h_seconds".to_string()
            ]
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("9starts-with-digit");
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_metric_name("detect_seconds"));
        assert!(is_valid_metric_name("ns:cache_hits_total"));
        assert!(is_valid_metric_name("_private"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("1abc"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name("has-dash"));
    }

    #[test]
    fn label_validation() {
        assert!(is_valid_label_name("endpoint"));
        assert!(is_valid_label_name("_hidden"));
        assert!(!is_valid_label_name("2xx"));
        assert!(!is_valid_label_name("le-bound"));
        assert!(is_valid_label_value("scores"));
        assert!(is_valid_label_value("/score/42"));
        assert!(is_valid_label_value(""));
        assert!(!is_valid_label_value("has\"quote"));
        assert!(!is_valid_label_value("a,b"));
        assert!(!is_valid_label_value("brace{"));
        assert!(!is_valid_label_value("back\\slash"));
    }

    #[test]
    fn labeled_series_are_distinct_cells() {
        let r = Registry::new();
        let plain = r.counter("http_requests_total");
        let a = r.counter_labeled("http_requests_total", &[("endpoint", "scores")]);
        let b = r.counter_labeled("http_requests_total", &[("endpoint", "healthz")]);
        let a2 = r.counter_labeled("http_requests_total", &[("endpoint", "scores")]);
        assert!(a.same_cell(&a2));
        assert!(!a.same_cell(&b));
        assert!(!a.same_cell(&plain));
        a.add(2);
        b.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("http_requests_total{endpoint=\"scores\"}"), 2);
        assert_eq!(snap.counter("http_requests_total{endpoint=\"healthz\"}"), 1);
        assert_eq!(snap.counter("http_requests_total"), 0);
        // Empty label set collapses to the bare name.
        assert!(r
            .counter_labeled("http_requests_total", &[])
            .same_cell(&plain));
    }

    #[test]
    fn labeled_key_renders_in_given_order() {
        assert_eq!(
            labeled_key("m_total", &[("b", "2"), ("a", "1")]),
            "m_total{b=\"2\",a=\"1\"}"
        );
        assert_eq!(labeled_key("m_total", &[]), "m_total");
    }

    #[test]
    #[should_panic(expected = "invalid label value")]
    fn labeled_key_rejects_comma_value() {
        labeled_key("m_total", &[("a", "x,y")]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn labeled_key_rejects_bad_label_name() {
        labeled_key("m_total", &[("2xx", "x")]);
    }

    #[test]
    fn handles_enumerate_every_metric() {
        let r = Registry::new();
        r.counter("c_total").add(5);
        r.gauge("g").set(2.5);
        r.histogram_labeled_with_bounds("h_seconds", &[("op", "tick")], &[1.0])
            .observe(0.5);
        assert_eq!(r.metric_count(), 3);
        let handles = r.metric_handles();
        assert_eq!(handles.len(), 3);
        let mut names: Vec<&str> = handles.iter().map(|(n, _)| n.as_str()).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(names, sorted);
        names.retain(|n| *n == "h_seconds{op=\"tick\"}");
        assert_eq!(names.len(), 1);
        for (name, handle) in handles {
            match handle {
                MetricHandle::Counter(c) => {
                    assert_eq!(name, "c_total");
                    assert_eq!(c.get(), 5);
                }
                MetricHandle::Gauge(g) => {
                    assert_eq!(name, "g");
                    assert_eq!(g.get(), 2.5);
                }
                MetricHandle::Histogram(h) => {
                    assert_eq!(name, "h_seconds{op=\"tick\"}");
                    assert_eq!(h.count(), 1);
                }
            }
        }
    }
}
