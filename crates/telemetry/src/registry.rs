//! The global-free metric [`Registry`].
//!
//! A registry is a cheaply clonable handle (`Arc` inside) that hands out
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles by name, get-or-create
//! style. Registration takes a short write lock; the returned handles are
//! lock-free, so hot paths register once and increment forever.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use std::sync::Arc;

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// A named collection of metrics. Clones share the same storage.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.inner.metrics.read();
        f.debug_struct("Registry")
            .field("metrics", &metrics.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let mut metrics = self.inner.metrics.write();
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use.
    ///
    /// # Panics
    /// Panics if `name` is not a valid metric name or is already registered
    /// as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram registered under `name` with the default
    /// latency buckets, creating it on first use.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &crate::metric::DEFAULT_SECONDS_BUCKETS)
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bucket bounds on first use. An already-registered histogram
    /// keeps its original bounds.
    ///
    /// # Panics
    /// Panics on invalid names or kind mismatch, like [`Registry::counter`].
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::with_bounds(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Names of every registered metric, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        self.inner.metrics.read().keys().cloned().collect()
    }

    /// Captures a point-in-time [`Snapshot`] of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.read();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_cell() {
        let r = Registry::new();
        let a = r.counter("cache_hits_total");
        let b = r.counter("cache_hits_total");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("cache_hits_total").get(), 4);
        assert!(a.same_cell(&b));
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("c_total").add(2);
        r.gauge("g").set(1.5);
        r.histogram_with_bounds("h_seconds", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c_total"), 2);
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h_seconds").unwrap().count, 1);
        assert_eq!(
            r.metric_names(),
            vec![
                "c_total".to_string(),
                "g".to_string(),
                "h_seconds".to_string()
            ]
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("9starts-with-digit");
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_metric_name("detect_seconds"));
        assert!(is_valid_metric_name("ns:cache_hits_total"));
        assert!(is_valid_metric_name("_private"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("1abc"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name("has-dash"));
    }
}
