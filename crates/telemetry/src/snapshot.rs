//! Point-in-time views of a registry and delta arithmetic between them.
//!
//! A [`Snapshot`] is a plain serializable tree (sorted maps of metric name
//! to value) so it can be embedded in `RunResult`s, JSON exports, and
//! tests. [`Snapshot::diff`] subtracts an earlier snapshot from a later
//! one, which is how per-cycle deltas are reported instead of lifetime
//! totals.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Serializable view of a single histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, strictly increasing (`+Inf` implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, parallel to `bounds`.
    pub counts: Vec<u64>,
    /// Total observations, including those above every finite bound.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Cumulative counts per finite bound (Prometheus `le` semantics).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.counts
            .iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// within the bucket containing the target rank, mirroring Prometheus's
    /// `histogram_quantile`. Observations that landed above every finite
    /// bound clamp to the largest finite bound (the estimate cannot exceed
    /// what the buckets resolve).
    ///
    /// The edge cases are defined, not accidental: an **empty** histogram
    /// (`count == 0`) has no distribution to estimate, so the result is
    /// `None` — callers rendering quantile gauges (the Prometheus
    /// exposition, `MetricsExport::quantiles`) skip the series entirely
    /// rather than emit `NaN`. A NaN or out-of-range `q` also returns
    /// `None`, and a degenerate deserialized snapshot (non-empty count
    /// with no bounds and a non-finite sum) returns `None` rather than
    /// propagate the non-finite mean.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        // NaN fails the range check, so `q.is_nan()` lands here too.
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        let mut lower = 0.0f64;
        for (bound, bucket) in self.bounds.iter().zip(&self.counts) {
            let before = cumulative;
            cumulative += bucket;
            if cumulative as f64 >= rank {
                if *bucket == 0 {
                    return Some(*bound);
                }
                let frac = (rank - before as f64) / *bucket as f64;
                return Some(lower + frac * (bound - lower));
            }
            lower = *bound;
        }
        // Rank falls in the implicit +Inf bucket.
        self.bounds
            .last()
            .copied()
            .or_else(|| self.mean())
            .filter(|v| v.is_finite())
    }

    /// Subtracts `earlier` from `self` bucket-by-bucket.
    ///
    /// Returns `self` unchanged when the bucket layouts differ (the metric
    /// was re-created with different bounds between snapshots).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != earlier.bounds || self.counts.len() != earlier.counts.len() {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
        }
    }
}

/// Point-in-time view of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram views by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Subtracts `earlier` from `self`.
    ///
    /// Counters and histograms are differenced (names missing from
    /// `earlier` keep their full value); gauges are instantaneous, so the
    /// later value is kept as-is.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| match earlier.histograms.get(name) {
                Some(before) => (name.clone(), h.diff(before)),
                None => (name.clone(), h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram view by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True when no metric has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|v| *v == 0)
            && self.histograms.values().all(|h| h.count == 0)
            && self.gauges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: Vec<u64>, count: u64, sum: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts,
            count,
            sum,
        }
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_histograms() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("hits".into(), 10);
        earlier
            .histograms
            .insert("lat".into(), hist(vec![3, 1], 5, 2.0));

        let mut later = Snapshot::default();
        later.counters.insert("hits".into(), 25);
        later.counters.insert("misses".into(), 4);
        later.gauges.insert("residual".into(), 0.5);
        later
            .histograms
            .insert("lat".into(), hist(vec![5, 2], 9, 3.5));

        let d = later.diff(&earlier);
        assert_eq!(d.counter("hits"), 15);
        assert_eq!(d.counter("misses"), 4);
        assert_eq!(d.gauge("residual"), Some(0.5));
        let h = d.histogram("lat").unwrap();
        assert_eq!(h.counts, vec![2, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 4 obs ≤1.0, 4 obs in (1.0, 2.0], 2 obs above 2.0 → count 10.
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![4, 4],
            count: 10,
            sum: 12.0,
        };
        // rank(0.5) = 5 → 1 into the second bucket of 4 → 1.0 + 0.25.
        assert!((h.quantile(0.5).unwrap() - 1.25).abs() < 1e-12);
        // rank(0.2) = 2 → halfway through the first bucket.
        assert!((h.quantile(0.2).unwrap() - 0.5).abs() < 1e-12);
        // rank(0.99) = 9.9 → +Inf bucket → clamps to largest finite bound.
        assert_eq!(h.quantile(0.99), Some(2.0));
        // Edges and degenerate inputs.
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(-0.1), None);
        let empty = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0],
            count: 0,
            sum: 0.0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantile_empty_and_degenerate_cases_never_yield_nan() {
        let empty = HistogramSnapshot {
            bounds: vec![0.5, 1.0],
            counts: vec![0, 0],
            count: 0,
            sum: 0.0,
        };
        // Empty histogram: no quantile at any q, including the edges.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        // NaN q is out of range, not a panic and not a NaN result.
        let h = hist(vec![1, 1], 2, 1.5);
        assert_eq!(h.quantile(f64::NAN), None);
        // Degenerate deserialized snapshot: observations but no bounds and
        // a non-finite sum. The +Inf fallthrough must not surface NaN.
        let degenerate = HistogramSnapshot {
            bounds: vec![],
            counts: vec![],
            count: 3,
            sum: f64::NAN,
        };
        assert_eq!(degenerate.quantile(0.5), None);
        // Same shape with a finite sum falls back to the mean.
        let boundless = HistogramSnapshot {
            bounds: vec![],
            counts: vec![],
            count: 4,
            sum: 8.0,
        };
        assert_eq!(boundless.quantile(0.5), Some(2.0));
        // Any value returned is finite.
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            if let Some(v) = h.quantile(q) {
                assert!(v.is_finite(), "quantile({q}) = {v}");
            }
        }
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache_hits_total".into(), 7);
        snap.gauges.insert("eigentrust_residual".into(), 1e-9);
        snap.histograms
            .insert("detect_seconds".into(), hist(vec![1, 0], 1, 0.25));
        let text = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
