//! Scoped span timers.
//!
//! A [`Span`] measures the wall time between its creation and its drop and
//! records the elapsed seconds into a histogram named `{name}_seconds`:
//!
//! ```
//! use socialtrust_telemetry::{Registry, Span};
//!
//! let registry = Registry::new();
//! {
//!     let _span = Span::enter(&registry, "detect_all");
//!     // ... timed work ...
//! } // drop records into `detect_all_seconds`
//! assert_eq!(registry.snapshot().histogram("detect_all_seconds").unwrap().count, 1);
//! ```

use std::time::Instant;

use crate::metric::Histogram;
use crate::registry::Registry;

/// A scoped timer that records its lifetime into a histogram on drop.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Starts a span that will record into the registry histogram
    /// `{name}_seconds` (created with the default latency buckets on first
    /// use).
    pub fn enter(registry: &Registry, name: &str) -> Span {
        Span::on(registry.histogram(&format!("{name}_seconds")))
    }

    /// Starts a span on a pre-fetched histogram handle — the zero-lookup
    /// variant for hot loops that resolve their histograms once up front.
    pub fn on(hist: Histogram) -> Span {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the span started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = Registry::new();
        {
            let span = Span::enter(&registry, "unit_work");
            assert!(span.elapsed_seconds() >= 0.0);
        }
        let snap = registry.snapshot();
        let h = snap.histogram("unit_work_seconds").expect("histogram");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn span_on_prefetched_histogram() {
        let registry = Registry::new();
        let hist = registry.histogram("hot_seconds");
        for _ in 0..3 {
            let _span = Span::on(hist.clone());
        }
        assert_eq!(
            registry.snapshot().histogram("hot_seconds").unwrap().count,
            3
        );
    }
}
