//! A leveled structured logger for long-running binaries.
//!
//! The workspace's daemons and CLIs need more than bare `eprintln!`: a
//! severity filter, a stable machine-parseable format, and typed
//! key/value fields. Like the rest of this crate the logger is
//! global-free — a [`Logger`] is a cheap `Arc` handle constructed by the
//! binary and threaded through its threads — and dependency-free: the
//! text format is rendered by hand and the JSONL format rides the
//! vendored serde shim for string escaping.
//!
//! Two output formats, chosen at construction:
//!
//! * **text** (default): `TIMESTAMP LEVEL target: message key=value ...`
//!   — one line per record, RFC 3339 UTC timestamps with millisecond
//!   precision.
//! * **JSONL**: `{"ts":"...","level":"info","target":"...",
//!   "message":"...","fields":{...}}` — one JSON object per line.
//!
//! Records below the configured [`Level`] are dropped before any
//! formatting work. Each record is written to stderr (or an in-memory
//! buffer, for tests) as a single write, so lines from concurrent
//! threads never interleave mid-line.
//!
//! ```
//! use socialtrust_telemetry::log::{Level, Logger};
//!
//! let (log, buffer) = Logger::buffered(Level::Info, false);
//! log.info("ingest", "batch applied", &[("events", 42u64.into())]);
//! log.debug("ingest", "dropped below the level filter", &[]);
//! let lines = buffer.lines();
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains("INFO  ingest: batch applied events=42"));
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use std::sync::Mutex;

/// Record severity, most severe first. The logger keeps records at or
/// above (i.e. `<=` in this ordering) its configured level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The binary cannot do what it was asked to.
    Error,
    /// Something was skipped, dropped, or degraded — the binary goes on.
    Warn,
    /// Lifecycle and progress records (the default level).
    Info,
    /// Per-operation detail for diagnosing behavior.
    Debug,
    /// Very chatty inner-loop detail.
    Trace,
}

impl Level {
    /// Upper-case fixed-width name used by the text format.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Lower-case name used by the JSONL format.
    pub fn as_lower(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
            Level::Trace => 5,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(raw: &str) -> Result<Level, String> {
        match raw.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (error|warn|info|debug|trace)"
            )),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_lower())
    }
}

/// A typed field value attached to a log record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string value (JSON-escaped in both formats when needed).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered `null` in JSONL when non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    /// Render as a JSON value (strings escaped via the serde shim).
    fn to_json(&self) -> String {
        match self {
            FieldValue::Str(s) => {
                serde_json::to_string(s).unwrap_or_else(|_| "\"<unrenderable>\"".to_owned())
            }
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v}"),
            FieldValue::F64(_) => "null".to_owned(),
            FieldValue::Bool(v) => v.to_string(),
        }
    }

    /// Render for the text format: bare when unambiguous, JSON-quoted
    /// when the string carries whitespace or quoting.
    fn to_text(&self) -> String {
        match self {
            FieldValue::Str(s)
                if !s.is_empty()
                    && s.chars()
                        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\') =>
            {
                s.clone()
            }
            other => other.to_json(),
        }
    }
}

enum Output {
    Stderr,
    Buffer(Arc<Mutex<String>>),
}

struct LoggerInner {
    /// `Level::rank` cutoff; 0 disables every record.
    cutoff: AtomicU8,
    json: bool,
    out: Output,
}

/// A shared, leveled, structured logger. Cloning shares the level filter
/// and output.
#[derive(Clone)]
pub struct Logger {
    inner: Arc<LoggerInner>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level())
            .field("json", &self.inner.json)
            .finish()
    }
}

/// The capture side of [`Logger::buffered`]: accumulated log lines, for
/// tests.
#[derive(Clone)]
pub struct LogBuffer {
    buf: Arc<Mutex<String>>,
}

impl LogBuffer {
    /// Everything logged so far, as one string.
    pub fn contents(&self) -> String {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Everything logged so far, split into lines.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_owned).collect()
    }
}

impl Logger {
    fn with_output(level: Option<Level>, json: bool, out: Output) -> Logger {
        Logger {
            inner: Arc::new(LoggerInner {
                cutoff: AtomicU8::new(level.map_or(0, Level::rank)),
                json,
                out,
            }),
        }
    }

    /// A logger writing whole lines to stderr.
    pub fn stderr(level: Level, json: bool) -> Logger {
        Logger::with_output(Some(level), json, Output::Stderr)
    }

    /// A logger capturing into an in-memory buffer, for tests.
    pub fn buffered(level: Level, json: bool) -> (Logger, LogBuffer) {
        let buf = Arc::new(Mutex::new(String::new()));
        let logger = Logger::with_output(Some(level), json, Output::Buffer(Arc::clone(&buf)));
        (logger, LogBuffer { buf })
    }

    /// A logger that drops every record.
    pub fn disabled() -> Logger {
        Logger::with_output(None, false, Output::Stderr)
    }

    /// The current level, or `None` when disabled.
    pub fn level(&self) -> Option<Level> {
        match self.inner.cutoff.load(Ordering::Relaxed) {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }

    /// Changes the level filter for every clone of this logger.
    pub fn set_level(&self, level: Level) {
        self.inner.cutoff.store(level.rank(), Ordering::Relaxed);
    }

    /// Whether a record at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level.rank() <= self.inner.cutoff.load(Ordering::Relaxed)
    }

    /// Emits one record: severity, a short component name (`target`), a
    /// human message, and typed fields.
    pub fn log(&self, level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let line = if self.inner.json {
            render_json(level, target, message, fields)
        } else {
            render_text(level, target, message, fields)
        };
        match &self.inner.out {
            Output::Stderr => eprintln!("{line}"),
            Output::Buffer(buf) => {
                let mut buf = buf.lock().unwrap_or_else(|e| e.into_inner());
                buf.push_str(&line);
                buf.push('\n');
            }
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Error, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Warn, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Info, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Debug, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Trace`].
    pub fn trace(&self, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Trace, target, message, fields);
    }
}

fn render_text(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) -> String {
    let mut line = format!(
        "{} {:5} {target}: {message}",
        rfc3339_millis(SystemTime::now()),
        level.as_str()
    );
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&value.to_text());
    }
    line
}

fn render_json(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) -> String {
    let escape =
        |s: &str| serde_json::to_string(s).unwrap_or_else(|_| "\"<unrenderable>\"".to_owned());
    let mut line = format!(
        "{{\"ts\":\"{}\",\"level\":\"{}\",\"target\":{},\"message\":{}",
        rfc3339_millis(SystemTime::now()),
        level.as_lower(),
        escape(target),
        escape(message),
    );
    if !fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&escape(key));
            line.push(':');
            line.push_str(&value.to_json());
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// RFC 3339 UTC timestamp with millisecond precision, e.g.
/// `2026-08-08T12:34:56.789Z`. Civil-date math from days-since-epoch
/// (Howard Hinnant's algorithm), so no date/time dependency is needed.
pub fn rfc3339_millis(t: SystemTime) -> String {
    let since_epoch = t.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = since_epoch.as_secs();
    let millis = since_epoch.subsec_millis();
    let (days, tod) = (secs / 86_400, secs % 86_400);
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn level_parse_and_order() {
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Warn && Level::Warn < Level::Trace);
    }

    #[test]
    fn level_filter_drops_below_cutoff() {
        let (log, buffer) = Logger::buffered(Level::Warn, false);
        log.info("t", "dropped", &[]);
        log.warn("t", "kept", &[]);
        log.error("t", "kept too", &[]);
        assert_eq!(buffer.lines().len(), 2);
        log.set_level(Level::Debug);
        log.debug("t", "now kept", &[]);
        assert_eq!(buffer.lines().len(), 3);
        assert_eq!(log.level(), Some(Level::Debug));
    }

    #[test]
    fn disabled_logger_drops_everything() {
        let log = Logger::disabled();
        assert!(!log.enabled(Level::Error));
        assert_eq!(log.level(), None);
        log.error("t", "nothing observable happens", &[]);
    }

    #[test]
    fn text_format_renders_fields() {
        let (log, buffer) = Logger::buffered(Level::Info, false);
        log.info(
            "server",
            "listening on http://127.0.0.1:8080",
            &[
                ("workers", 4u64.into()),
                ("ratio", 0.5f64.into()),
                ("name", "with space".into()),
                ("live", true.into()),
            ],
        );
        let line = &buffer.lines()[0];
        assert!(line.contains("INFO  server: listening on http://127.0.0.1:8080"));
        assert!(line.contains("workers=4"));
        assert!(line.contains("ratio=0.5"));
        assert!(line.contains("name=\"with space\""));
        assert!(line.contains("live=true"));
        assert!(line.contains("T"), "timestamp present: {line}");
        assert!(line.ends_with("live=true"));
    }

    #[test]
    fn json_format_is_parseable() {
        let (log, buffer) = Logger::buffered(Level::Info, true);
        log.warn(
            "ingest",
            "skipped \"weird\" line",
            &[("lineno", 7u64.into()), ("lag", f64::NAN.into())],
        );
        let line = &buffer.lines()[0];
        let value: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("\"level\":\"warn\""), "{text}");
        assert!(line.contains("\"message\":\"skipped \\\"weird\\\" line\""));
        assert!(line.contains("\"lineno\":7"));
        assert!(line.contains("\"lag\":null"), "non-finite floats: {line}");
    }

    #[test]
    fn rfc3339_known_instants() {
        assert_eq!(rfc3339_millis(UNIX_EPOCH), "1970-01-01T00:00:00.000Z");
        // 2026-08-08T00:00:00Z == 1786147200 seconds after the epoch.
        let t = UNIX_EPOCH + Duration::from_millis(1_786_147_200_250);
        assert_eq!(rfc3339_millis(t), "2026-08-08T00:00:00.250Z");
        // Leap-year day: 2024-02-29T12:00:00Z == 1709208000.
        let t = UNIX_EPOCH + Duration::from_secs(1_709_208_000);
        assert_eq!(rfc3339_millis(t), "2024-02-29T12:00:00.000Z");
    }

    #[test]
    fn clones_share_filter_and_output() {
        let (log, buffer) = Logger::buffered(Level::Info, false);
        let clone = log.clone();
        clone.set_level(Level::Error);
        log.info("t", "dropped via clone's filter", &[]);
        clone.error("t", "lands in the shared buffer", &[]);
        assert_eq!(buffer.lines().len(), 1);
    }
}
