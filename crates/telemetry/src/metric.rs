//! Lock-free metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`].
//!
//! All three are cheap `Arc` handles around atomic storage, so the same
//! metric can be held simultaneously by the registry (for export) and by
//! hot-path code (for increments) without any locking. Floating-point
//! cells store the `f64` bit pattern inside an `AtomicU64` and update it
//! with a compare-and-swap loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Adds `delta` to an `AtomicU64` interpreted as an `f64` bit pattern.
///
/// This is the classic bit-cast CAS loop: contention retries recompute the
/// sum from the freshly observed bits, so no update is ever lost.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A monotonically increasing `u64` counter.
///
/// Cloning yields another handle to the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter that is not (yet) registered anywhere.
    ///
    /// Instrumented components start with detached counters so they work
    /// without a registry; `attach_telemetry` later swaps in registered
    /// handles, carrying the accumulated count over.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same underlying cell.
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A `f64` gauge that can be set to arbitrary values or adjusted by deltas.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a gauge that is not registered anywhere.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (bit-cast CAS loop).
    #[inline]
    pub fn add(&self, delta: f64) {
        atomic_f64_add(&self.bits, delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram buckets for latencies in seconds: geometric, base 4,
/// from 1 µs up to ~17 s. Thirteen finite upper bounds plus the implicit
/// `+Inf` bucket.
pub const DEFAULT_SECONDS_BUCKETS: [f64; 13] = [
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 0.262144,
    1.048576, 4.194304, 16.777216,
];

/// Default buckets for small integer quantities (e.g. iteration counts).
pub const DEFAULT_COUNT_BUCKETS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];

struct HistogramInner {
    /// Finite upper bounds, strictly increasing. The `+Inf` bucket is
    /// implicit: observations above the last bound only hit `count`/`sum`.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts, one per finite bound.
    buckets: Vec<AtomicU64>,
    /// Total number of observations (including those above every bound).
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram with lock-free observation.
///
/// Bucket counts are plain per-bucket tallies internally; cumulative counts
/// (Prometheus `le` semantics) are produced at snapshot/export time.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.inner.bounds)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&DEFAULT_SECONDS_BUCKETS)
    }
}

impl Histogram {
    /// Creates a histogram with the given finite upper bounds.
    ///
    /// Bounds must be finite and strictly increasing.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Creates a detached histogram with the default latency buckets.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// Non-finite observations are counted (so `count` stays honest) but
    /// excluded from `sum` and bucketed as `+Inf`.
    #[inline]
    pub fn observe(&self, value: f64) {
        // Linear scan: bucket vectors here are ~10-13 entries, and the scan
        // is branch-predictable; a binary search costs more in practice.
        for (bound, bucket) in self.inner.bounds.iter().zip(&self.inner.buckets) {
            if value <= *bound {
                bucket.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            atomic_f64_add(&self.inner.sum_bits, value);
        }
    }

    /// Times `f` and records the elapsed wall time in seconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.observe(start.elapsed().as_secs_f64());
        out
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Captures a consistent-enough point-in-time view of the histogram.
    ///
    /// Individual cells are read with relaxed ordering, so a snapshot taken
    /// concurrently with observations may tear by a few in-flight
    /// observations; exported totals are re-clamped so the invariant
    /// `cumulative(last bucket) <= count` always holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let bucketed: u64 = counts.iter().sum();
        let count = self.count().max(bucketed);
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts,
            count,
            sum: self.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = Counter::detached();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);
        assert!(c.same_cell(&c2));
        assert!(!c.same_cell(&Counter::detached()));
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::detached();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 105.0).abs() < 1e-9);
        // Cumulative view: last finite bucket holds 3, +Inf holds 4.
        assert_eq!(snap.cumulative(), vec![1, 2, 3]);
    }

    #[test]
    fn histogram_nonfinite_observations_kept_out_of_sum() {
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.counts, vec![1]);
        assert!((snap.sum - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[2.0, 1.0]);
    }
}
