//! Hierarchical tracing and decision provenance.
//!
//! Where the registry answers *"how much / how long"* in aggregate, a
//! trace answers *"why did this particular rating get rescaled"*: each
//! engine cycle opens one root span ([`Tracer::begin_root`]), the
//! detection / Gaussian / rescale / reputation-update phases hang child
//! spans off it, and per-decision spans (one per detector verdict, one
//! per Gaussian weight, one per rescaled rating) carry the exact
//! threshold comparisons and kernel inputs as typed attributes.
//!
//! Design points:
//!
//! * **Trace-granular ring buffer.** Spans buffer in the cycle's
//!   [`ActiveTrace`] and the whole tree commits atomically when the root
//!   guard drops; the [`Tracer`] keeps the last `max_traces` committed
//!   trees. A trace in the store is therefore always *well-formed*: every
//!   span's parent exists (spans whose parents were capped out are pruned
//!   at commit and counted in `dropped_spans`), and span ids are unique
//!   within the trace.
//! * **Deterministic sampling.** The per-root sampling decision is a
//!   modulo counter, not a random draw — tracing never touches the
//!   simulation's RNG, so instrumented and uninstrumented runs are
//!   bit-identical.
//! * **Bounded.** `max_spans_per_trace` caps memory per cycle; overflow
//!   increments a drop counter instead of growing without bound.
//! * **Cheap when off.** A disabled (default) tracer is a `None`; every
//!   entry point is a single branch.
//!
//! Two consumers ship with the module: the JSON [`TraceDump`] read by
//! `socialtrust-cli explain`, and [`chrome_trace_json`] which renders the
//! span trees as Chrome trace-event JSON (loadable in `chrome://tracing`
//! or Perfetto) for cycle flamegraphs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{Deserialize, Error, Serialize, Value};

/// Well-known span names — the span taxonomy documented in DESIGN.md §4b.
/// Instrumentation sites and consumers (the `explain` query surface, the
/// provenance tests) agree on these strings.
pub mod names {
    /// Root span of one engine cycle (attrs: `cycle`, `system`).
    pub const CYCLE: &str = "cycle";
    /// The detection pass over the interval's rating pairs.
    pub const DETECT: &str = "detect_all";
    /// One detector verdict (child of [`DETECT`]), carrying the exact
    /// threshold comparisons that fired.
    pub const VERDICT: &str = "detector_verdict";
    /// The Gaussian weight pass over flagged (and remembered) pairs.
    pub const GAUSSIAN: &str = "gaussian_weights";
    /// One pair's Gaussian weight (child of [`GAUSSIAN`]), carrying the
    /// Eq. (5) kernel inputs and the resulting weight.
    pub const WEIGHT: &str = "gaussian_weight";
    /// The rescale pass multiplying buffered ratings by their weights.
    pub const RESCALE: &str = "rescale";
    /// One rescaled rating (child of [`RESCALE`]).
    pub const RESCALED_RATING: &str = "rescale_rating";
    /// The wrapped engine's reputation update.
    pub const UPDATE: &str = "reputation_update";
    /// One EigenTrust power iteration (child of [`UPDATE`] when reached
    /// through the decorator).
    pub const EIGENTRUST: &str = "eigentrust_update";
}

/// Identifier of one committed trace (one engine cycle), monotonically
/// increasing per [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

/// Identifier of one span. Unique within its trace (the root is always
/// span 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Boolean flag (e.g. `ghost`, `warm_start`).
    Bool(bool),
    /// Unsigned integer (node ids, counts, cycle indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point (thresholds, Ω values, weights).
    F64(f64),
    /// String (behavior codes, equation tags, system names).
    Str(String),
}

impl AttrValue {
    /// The value as `f64` when it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::F64(v) => Some(*v),
            AttrValue::U64(v) => Some(*v as f64),
            AttrValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            AttrValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

// The vendored serde derive cannot handle data-carrying enum variants, so
// AttrValue maps directly onto the JSON scalar it represents.
impl Serialize for AttrValue {
    fn to_value(&self) -> Value {
        match self {
            AttrValue::Bool(b) => Value::Bool(*b),
            AttrValue::U64(v) => Value::U64(*v),
            AttrValue::I64(v) => Value::I64(*v),
            AttrValue::F64(v) => Value::F64(*v),
            AttrValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Deserialize for AttrValue {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(AttrValue::Bool(*b)),
            Value::U64(v) => Ok(AttrValue::U64(*v)),
            // Normalize non-negative integers to U64 so a serialize →
            // parse round trip compares equal regardless of which integer
            // variant the JSON parser picked.
            Value::I64(v) if *v >= 0 => Ok(AttrValue::U64(*v as u64)),
            Value::I64(v) => Ok(AttrValue::I64(*v)),
            Value::F64(v) => Ok(AttrValue::F64(*v)),
            Value::Str(s) => Ok(AttrValue::Str(s.clone())),
            other => Err(Error::custom(format!(
                "span attribute must be a JSON scalar, got {other:?}"
            ))),
        }
    }
}

/// One recorded span: a named, timed tree node with typed attributes.
///
/// Times are nanoseconds relative to the *trace* open (the root starts at
/// 0), so a dump is stable across process restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is span 1.
    pub id: SpanId,
    /// Parent span id; `None` only for the root. Committed traces are
    /// well-formed: every `Some` parent exists in the same trace.
    pub parent: Option<SpanId>,
    /// Span name from the [`names`] taxonomy.
    pub name: String,
    /// Start offset in nanoseconds since the trace opened.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Typed attributes, sorted by key.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl SpanRecord {
    /// Attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Numeric attribute by key.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attrs.get(key).and_then(AttrValue::as_f64)
    }

    /// Unsigned-integer attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs.get(key).and_then(AttrValue::as_u64)
    }

    /// String attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).and_then(AttrValue::as_str)
    }

    /// Boolean attribute by key.
    pub fn attr_bool(&self, key: &str) -> Option<bool> {
        self.attrs.get(key).and_then(AttrValue::as_bool)
    }
}

/// One committed span tree (one engine cycle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Trace id, monotonically increasing per tracer.
    pub id: TraceId,
    /// Id of the root span (always present in `spans`).
    pub root: SpanId,
    /// Nanoseconds between tracer creation and this trace opening — the
    /// absolute timeline offset used by the Chrome exporter.
    pub opened_ns: u64,
    /// Spans dropped by the per-trace cap (including descendants pruned at
    /// commit because their parent was capped out).
    pub dropped_spans: u64,
    /// All kept spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// The root span.
    pub fn root_span(&self) -> Option<&SpanRecord> {
        self.span(self.root)
    }

    /// Span by id.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// All spans with the given name, in start order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Direct children of the given span, in start order.
    pub fn children_of(&self, id: SpanId) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// The engine cycle index stamped on the root span, when present.
    pub fn cycle(&self) -> Option<u64> {
        self.root_span().and_then(|r| r.attr_u64("cycle"))
    }
}

/// How the tracer decides whether an engine cycle records a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Record nothing (roots are still counted in [`TraceStats`]).
    Off,
    /// Record one root in every `N` (`Ratio(1)` ≡ `Full`; `Ratio(0)` ≡
    /// `Off`). The decision is `sequence % N == 0` — deterministic, no
    /// RNG involved.
    Ratio(u32),
    /// Record every root.
    Full,
}

impl SampleMode {
    /// Whether the `seq`-th root (0-based) is sampled.
    fn admits(self, seq: u64) -> bool {
        match self {
            SampleMode::Off => false,
            SampleMode::Full => true,
            SampleMode::Ratio(0) => false,
            SampleMode::Ratio(n) => seq.is_multiple_of(u64::from(n)),
        }
    }

    /// Parse `"off"`, `"full"`, or an integer `N` (one-in-N sampling).
    pub fn parse(raw: &str) -> Result<SampleMode, String> {
        match raw {
            "off" => Ok(SampleMode::Off),
            "full" => Ok(SampleMode::Full),
            n => n
                .parse::<u32>()
                .map(|n| {
                    if n <= 1 {
                        SampleMode::Full
                    } else {
                        SampleMode::Ratio(n)
                    }
                })
                .map_err(|_| format!("bad sample mode {raw:?} (off|full|<N>)")),
        }
    }
}

impl std::fmt::Display for SampleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleMode::Off => write!(f, "off"),
            SampleMode::Full => write!(f, "full"),
            SampleMode::Ratio(n) => write!(f, "1/{n}"),
        }
    }
}

/// Tracer bounds and sampling. (Named `TracerConfig` — `TraceConfig` is
/// the Overstock trace generator's configuration elsewhere in the
/// workspace.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracerConfig {
    /// Per-root sampling decision. Default: 1-in-16 — the "default
    /// sampling rate" the overhead budget (≤5% cycle time) is measured at.
    pub sample: SampleMode,
    /// Ring-buffer bound: committed traces beyond this evict the oldest.
    pub max_traces: usize,
    /// Per-trace span cap; overflow increments `dropped_spans` instead of
    /// growing without bound.
    pub max_spans_per_trace: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            sample: SampleMode::Ratio(16),
            max_traces: 256,
            max_spans_per_trace: 32_768,
        }
    }
}

impl TracerConfig {
    /// The default configuration with a different sample mode.
    pub fn with_sample(sample: SampleMode) -> Self {
        TracerConfig {
            sample,
            ..TracerConfig::default()
        }
    }
}

/// Tracer lifetime counters, for diagnostics and the dump header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Roots opened (sampled or not).
    pub roots_started: u64,
    /// Roots the sampler admitted.
    pub roots_sampled: u64,
    /// Traces committed to the ring.
    pub traces_committed: u64,
    /// Committed traces evicted by the ring bound.
    pub traces_evicted: u64,
    /// Spans kept across all committed traces.
    pub spans_recorded: u64,
    /// Spans dropped by the per-trace cap (including commit-time prunes).
    pub spans_dropped: u64,
}

/// Lock helper: telemetry must never deadlock the host on a poisoned
/// mutex (a panic elsewhere while recording), so poisoning is ignored.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The open trace of the current cycle: spans buffer here and commit as
/// one tree when the root guard drops.
struct ActiveTrace {
    trace_id: u64,
    /// Nanoseconds since tracer origin when this trace opened.
    opened_ns: u64,
    origin: Instant,
    root_id: u64,
    next_span: AtomicU64,
    /// Span id new scoped children attach to (see [`Tracer::child`]).
    current_parent: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    max_spans: usize,
}

impl ActiveTrace {
    /// Nanoseconds since this trace opened.
    fn rel_now(&self) -> u64 {
        (self.origin.elapsed().as_nanos() as u64).saturating_sub(self.opened_ns)
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, record: SpanRecord) {
        let mut spans = lock(&self.spans);
        if spans.len() >= self.max_spans {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(record);
    }
}

struct TracerInner {
    origin: Instant,
    config: TracerConfig,
    store: Mutex<VecDeque<TraceRecord>>,
    active: Mutex<Option<Arc<ActiveTrace>>>,
    next_trace: AtomicU64,
    root_seq: AtomicU64,
    roots_started: AtomicU64,
    roots_sampled: AtomicU64,
    traces_committed: AtomicU64,
    traces_evicted: AtomicU64,
    spans_recorded: AtomicU64,
    spans_dropped: AtomicU64,
}

/// Drop every span whose parent chain does not resolve (a parent fell to
/// the span cap after its children were already recorded). Iterates to a
/// fixed point so grandchildren of a pruned span go too.
fn prune_orphans(mut spans: Vec<SpanRecord>) -> (Vec<SpanRecord>, u64) {
    let mut pruned = 0u64;
    loop {
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.id.0).collect();
        let before = spans.len();
        spans.retain(|s| s.parent.is_none_or(|p| ids.contains(&p.0)));
        pruned += (before - spans.len()) as u64;
        if spans.len() == before {
            return (spans, pruned);
        }
    }
}

impl TracerInner {
    fn commit(&self, trace: &Arc<ActiveTrace>, name: &str, attrs: BTreeMap<String, AttrValue>) {
        // Close the active slot first so late `child()` calls on other
        // threads can no longer reach this trace.
        {
            let mut active = lock(&self.active);
            if active.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, trace)) {
                *active = None;
            }
        }
        let duration_ns = trace.rel_now();
        let mut spans = std::mem::take(&mut *lock(&trace.spans));
        spans.push(SpanRecord {
            id: SpanId(trace.root_id),
            parent: None,
            name: name.to_string(),
            start_ns: 0,
            duration_ns,
            attrs,
        });
        let capped = trace.dropped.load(Ordering::Relaxed);
        let (mut kept, pruned) = prune_orphans(spans);
        kept.sort_by_key(|s| (s.start_ns, s.id.0));
        let dropped_spans = capped + pruned;
        self.spans_recorded
            .fetch_add(kept.len() as u64, Ordering::Relaxed);
        self.spans_dropped
            .fetch_add(dropped_spans, Ordering::Relaxed);
        self.traces_committed.fetch_add(1, Ordering::Relaxed);
        let record = TraceRecord {
            id: TraceId(trace.trace_id),
            root: SpanId(trace.root_id),
            opened_ns: trace.opened_ns,
            dropped_spans,
            spans: kept,
        };
        let mut store = lock(&self.store);
        while store.len() >= self.config.max_traces.max(1) {
            store.pop_front();
            self.traces_evicted.fetch_add(1, Ordering::Relaxed);
        }
        store.push_back(record);
    }
}

/// The tracing entry point: cheap to clone, disabled by default.
///
/// One tracer is carried per [`crate::Telemetry`] bundle. The engine
/// opens a root per cycle ([`Tracer::begin_root`]); instrumented
/// components reach the current cycle's trace through [`Tracer::child`]
/// without any handle threading.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing; every entry point is one branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with the given bounds and sampling.
    pub fn new(config: TracerConfig) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                origin: Instant::now(),
                config,
                store: Mutex::new(VecDeque::new()),
                active: Mutex::new(None),
                next_trace: AtomicU64::new(0),
                root_seq: AtomicU64::new(0),
                roots_started: AtomicU64::new(0),
                roots_sampled: AtomicU64::new(0),
                traces_committed: AtomicU64::new(0),
                traces_evicted: AtomicU64::new(0),
                spans_recorded: AtomicU64::new(0),
                spans_dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this tracer was constructed enabled (it may still sample
    /// roots away).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open the root span of a new trace (one engine cycle). The sampler
    /// decides here whether the whole cycle records; an unsampled root
    /// returns an inert guard. The trace commits to the ring when the
    /// returned guard drops.
    pub fn begin_root(&self, name: &'static str) -> RootGuard {
        let Some(inner) = &self.inner else {
            return RootGuard { ctx: None };
        };
        inner.roots_started.fetch_add(1, Ordering::Relaxed);
        let seq = inner.root_seq.fetch_add(1, Ordering::Relaxed);
        if !inner.config.sample.admits(seq) {
            return RootGuard { ctx: None };
        }
        inner.roots_sampled.fetch_add(1, Ordering::Relaxed);
        let trace_id = inner.next_trace.fetch_add(1, Ordering::Relaxed);
        let root_id = 1u64;
        let trace = Arc::new(ActiveTrace {
            trace_id,
            opened_ns: inner.origin.elapsed().as_nanos() as u64,
            origin: inner.origin,
            root_id,
            next_span: AtomicU64::new(root_id + 1),
            current_parent: AtomicU64::new(root_id),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            max_spans: inner.config.max_spans_per_trace,
        });
        *lock(&inner.active) = Some(Arc::clone(&trace));
        RootGuard {
            ctx: Some(RootCtx {
                inner: Arc::clone(inner),
                trace,
                name,
                attrs: BTreeMap::new(),
            }),
        }
    }

    /// Open a child span under the current cycle's *current parent* (the
    /// innermost live span opened through this method — the root when no
    /// other is live). Returns `None` when disabled or the cycle is
    /// unsampled, so callers can skip attribute computation entirely.
    ///
    /// Scoped: while the returned handle lives, further `child()` calls
    /// nest under it. Only sequential (single-threaded) phases should use
    /// this; parallel per-item spans should hang off an explicit handle
    /// via [`SpanHandle::child`], which does not touch the scope.
    pub fn child(&self, name: &'static str) -> Option<SpanHandle> {
        let inner = self.inner.as_ref()?;
        let trace = lock(&inner.active).clone()?;
        let parent = trace.current_parent.load(Ordering::Relaxed);
        let id = trace.alloc_span();
        trace.current_parent.store(id, Ordering::Relaxed);
        Some(SpanHandle {
            start_ns: trace.rel_now(),
            trace,
            id,
            parent,
            name,
            attrs: BTreeMap::new(),
            restore_parent: Some(parent),
        })
    }

    /// A copy of every committed trace, oldest first.
    pub fn traces(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => lock(&inner.store).iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Drain every committed trace, oldest first.
    pub fn take_traces(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => lock(&inner.store).drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceStats {
        match &self.inner {
            Some(inner) => TraceStats {
                roots_started: inner.roots_started.load(Ordering::Relaxed),
                roots_sampled: inner.roots_sampled.load(Ordering::Relaxed),
                traces_committed: inner.traces_committed.load(Ordering::Relaxed),
                traces_evicted: inner.traces_evicted.load(Ordering::Relaxed),
                spans_recorded: inner.spans_recorded.load(Ordering::Relaxed),
                spans_dropped: inner.spans_dropped.load(Ordering::Relaxed),
            },
            None => TraceStats::default(),
        }
    }
}

struct RootCtx {
    inner: Arc<TracerInner>,
    trace: Arc<ActiveTrace>,
    name: &'static str,
    attrs: BTreeMap<String, AttrValue>,
}

/// Guard for a trace's root span; the whole trace commits when it drops.
/// Inert (all methods no-ops) when the cycle was not sampled.
pub struct RootGuard {
    ctx: Option<RootCtx>,
}

impl RootGuard {
    /// Whether this cycle is actually recording. Callers can skip
    /// building expensive attribute values when it is not.
    pub fn is_recording(&self) -> bool {
        self.ctx.is_some()
    }

    /// Attach an attribute to the root span.
    pub fn set_attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(ctx) = &mut self.ctx {
            ctx.attrs.insert(key.to_string(), value.into());
        }
    }
}

impl Drop for RootGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            ctx.inner.commit(&ctx.trace, ctx.name, ctx.attrs);
        }
    }
}

/// A live (unfinished) span. Records itself into the active trace when
/// dropped.
pub struct SpanHandle {
    trace: Arc<ActiveTrace>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: BTreeMap<String, AttrValue>,
    /// `Some(previous)` when this handle owns the tracer's scoped
    /// current-parent slot and must restore it on drop.
    restore_parent: Option<u64>,
}

impl SpanHandle {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Attach an attribute.
    pub fn set_attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.attrs.insert(key.to_string(), value.into());
    }

    /// Open a child of this span. Does not touch the tracer's scoped
    /// current parent, so it is safe from parallel (rayon) workers that
    /// share `&self`.
    pub fn child(&self, name: &'static str) -> SpanHandle {
        SpanHandle {
            trace: Arc::clone(&self.trace),
            id: self.trace.alloc_span(),
            parent: self.id,
            name,
            start_ns: self.trace.rel_now(),
            attrs: BTreeMap::new(),
            restore_parent: None,
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let end = self.trace.rel_now();
        self.trace.record(SpanRecord {
            id: SpanId(self.id),
            parent: Some(SpanId(self.parent)),
            name: self.name.to_string(),
            start_ns: self.start_ns,
            duration_ns: end.saturating_sub(self.start_ns),
            attrs: std::mem::take(&mut self.attrs),
        });
        if let Some(prev) = self.restore_parent {
            self.trace.current_parent.store(prev, Ordering::Relaxed);
        }
    }
}

/// The JSON document written by `simulate --trace-out` and read by
/// `explain`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDump {
    /// Committed traces, oldest first.
    pub traces: Vec<TraceRecord>,
    /// Tracer lifetime counters at collection time.
    pub stats: TraceStats,
}

impl TraceDump {
    /// Snapshot `tracer`'s committed traces and counters.
    pub fn collect(tracer: &Tracer) -> TraceDump {
        TraceDump {
            traces: tracer.traces(),
            stats: tracer.stats(),
        }
    }

    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TraceDump serialization is infallible")
    }

    /// Parse a dump from JSON text.
    pub fn from_json(text: &str) -> Result<TraceDump, String> {
        serde_json::from_str(text).map_err(|e| format!("bad trace dump: {e:?}"))
    }

    /// Write the dump as pretty JSON to `path`.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a dump from the JSON file at `path`.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> std::io::Result<TraceDump> {
        let text = std::fs::read_to_string(path)?;
        TraceDump::from_json(&text).map_err(std::io::Error::other)
    }
}

/// Render a dump as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto format): one complete (`"ph": "X"`) event per span with
/// microsecond `ts`/`dur` and the span attributes under `args`.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    let mut events: Vec<Value> = Vec::new();
    for trace in &dump.traces {
        for span in &trace.spans {
            let mut args: Vec<(String, Value)> = span
                .attrs
                .iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect();
            args.push(("trace_id".into(), Value::U64(trace.id.0)));
            args.push(("span_id".into(), Value::U64(span.id.0)));
            if let Some(parent) = span.parent {
                args.push(("parent_span_id".into(), Value::U64(parent.0)));
            }
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(span.name.clone())),
                ("cat".into(), Value::Str("socialtrust".into())),
                ("ph".into(), Value::Str("X".into())),
                (
                    "ts".into(),
                    Value::F64((trace.opened_ns + span.start_ns) as f64 / 1_000.0),
                ),
                ("dur".into(), Value::F64(span.duration_ns as f64 / 1_000.0)),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(1)),
                ("args".into(), Value::Object(args)),
            ]));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Seq(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_tracer() -> Tracer {
        Tracer::new(TracerConfig::with_sample(SampleMode::Full))
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let mut root = t.begin_root("cycle");
            assert!(!root.is_recording());
            root.set_attr("cycle", 0u64);
            assert!(t.child("detect_all").is_none());
        }
        assert!(t.traces().is_empty());
        assert_eq!(t.stats(), TraceStats::default());
    }

    #[test]
    fn child_without_open_root_is_none() {
        let t = full_tracer();
        assert!(t.child("detect_all").is_none());
    }

    #[test]
    fn spans_form_a_well_formed_tree() {
        let t = full_tracer();
        {
            let mut root = t.begin_root("cycle");
            root.set_attr("cycle", 7u64);
            {
                let mut detect = t.child("detect_all").unwrap();
                detect.set_attr("pairs", 3u64);
                let mut v = detect.child("detector_verdict");
                v.set_attr("rater", 2u32);
                v.set_attr("omega_c", 0.25);
                v.set_attr("behaviors", "B1+B3");
                drop(v);
            }
            {
                // After `detect` dropped, a new scoped child hangs off the
                // root again.
                let _update = t.child("reputation_update").unwrap();
                let inner = t.child("eigentrust_update").unwrap();
                // ... and a scoped child of a scoped child nests.
                drop(inner);
            }
        }
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.dropped_spans, 0);
        let root = trace.root_span().expect("root kept");
        assert_eq!(root.name, "cycle");
        assert_eq!(root.attr_u64("cycle"), Some(7));
        assert!(root.parent.is_none());

        // Every non-root parent resolves; ids unique.
        let ids: BTreeSet<u64> = trace.spans.iter().map(|s| s.id.0).collect();
        assert_eq!(ids.len(), trace.spans.len());
        for s in &trace.spans {
            if let Some(p) = s.parent {
                assert!(ids.contains(&p.0), "orphan span {:?}", s.name);
            }
        }

        let detect = trace.named("detect_all").next().expect("detect span");
        assert_eq!(detect.parent, Some(trace.root));
        let verdict = trace.named("detector_verdict").next().expect("verdict");
        assert_eq!(verdict.parent, Some(detect.id));
        assert_eq!(verdict.attr_str("behaviors"), Some("B1+B3"));
        assert_eq!(verdict.attr_f64("omega_c"), Some(0.25));
        let update = trace.named("reputation_update").next().expect("update");
        assert_eq!(update.parent, Some(trace.root));
        let eig = trace.named("eigentrust_update").next().expect("eigentrust");
        assert_eq!(eig.parent, Some(update.id));
    }

    #[test]
    fn ratio_sampling_admits_every_nth_root() {
        let t = Tracer::new(TracerConfig::with_sample(SampleMode::Ratio(3)));
        for _ in 0..7 {
            let _root = t.begin_root("cycle");
        }
        // Roots 0, 3, 6 sampled.
        assert_eq!(t.traces().len(), 3);
        let stats = t.stats();
        assert_eq!(stats.roots_started, 7);
        assert_eq!(stats.roots_sampled, 3);
        assert_eq!(stats.traces_committed, 3);
    }

    #[test]
    fn off_sampling_counts_roots_but_records_none() {
        let t = Tracer::new(TracerConfig::with_sample(SampleMode::Off));
        {
            let root = t.begin_root("cycle");
            assert!(!root.is_recording());
        }
        assert!(t.traces().is_empty());
        assert_eq!(t.stats().roots_started, 1);
        assert_eq!(t.stats().roots_sampled, 0);
    }

    #[test]
    fn ring_evicts_oldest_traces() {
        let t = Tracer::new(TracerConfig {
            sample: SampleMode::Full,
            max_traces: 2,
            max_spans_per_trace: 64,
        });
        for i in 0..4u64 {
            let mut root = t.begin_root("cycle");
            root.set_attr("cycle", i);
        }
        let traces = t.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].cycle(), Some(2));
        assert_eq!(traces[1].cycle(), Some(3));
        assert_eq!(t.stats().traces_evicted, 2);
    }

    #[test]
    fn span_cap_prunes_orphans_and_counts_drops() {
        let t = Tracer::new(TracerConfig {
            sample: SampleMode::Full,
            max_traces: 8,
            max_spans_per_trace: 2,
        });
        {
            let _root = t.begin_root("cycle");
            let parent = t.child("detect_all").unwrap();
            // Three children record before the parent; the cap (2) drops
            // the third child and then the parent itself — so the two kept
            // children become orphans and must be pruned at commit.
            let a = parent.child("detector_verdict");
            drop(a);
            let b = parent.child("detector_verdict");
            drop(b);
            let c = parent.child("detector_verdict");
            drop(c);
        }
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        // Only the root survives: children pruned, parent + third child
        // capped.
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].id, trace.root);
        assert_eq!(trace.dropped_spans, 4);
        // The invariant holds regardless: every kept parent resolves.
        let ids: BTreeSet<u64> = trace.spans.iter().map(|s| s.id.0).collect();
        for s in &trace.spans {
            if let Some(p) = s.parent {
                assert!(ids.contains(&p.0));
            }
        }
    }

    #[test]
    fn take_traces_drains_the_ring() {
        let t = full_tracer();
        {
            let _root = t.begin_root("cycle");
        }
        assert_eq!(t.take_traces().len(), 1);
        assert!(t.traces().is_empty());
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let t = full_tracer();
        {
            let mut root = t.begin_root("cycle");
            root.set_attr("cycle", 3u64);
            root.set_attr("system", "EigenTrust+SocialTrust");
            let mut child = t.child("detect_all").unwrap();
            child.set_attr("mean_freq", 1.5);
            child.set_attr("ghost", false);
            child.set_attr("delta", AttrValue::I64(-4));
        }
        let dump = TraceDump::collect(&t);
        let back = TraceDump::from_json(&dump.to_json()).expect("parses");
        assert_eq!(back, dump);
    }

    #[test]
    fn bad_dump_json_is_rejected() {
        assert!(TraceDump::from_json("{\"traces\": 3}").is_err());
        assert!(TraceDump::from_json("not json").is_err());
    }

    #[test]
    fn chrome_export_has_required_fields() {
        let t = full_tracer();
        {
            let mut root = t.begin_root("cycle");
            root.set_attr("cycle", 0u64);
            let _child = t.child("detect_all");
        }
        let dump = TraceDump::collect(&t);
        let text = chrome_trace_json(&dump);
        let doc: Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for event in events {
            assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
            assert!(event.get("ts").and_then(Value::as_f64).is_some());
            assert!(event.get("dur").and_then(Value::as_f64).is_some());
            assert!(event.get("name").and_then(Value::as_str).is_some());
            assert!(event.get("args").is_some());
        }
    }

    #[test]
    fn sample_mode_parses() {
        assert_eq!(SampleMode::parse("off").unwrap(), SampleMode::Off);
        assert_eq!(SampleMode::parse("full").unwrap(), SampleMode::Full);
        assert_eq!(SampleMode::parse("1").unwrap(), SampleMode::Full);
        assert_eq!(SampleMode::parse("16").unwrap(), SampleMode::Ratio(16));
        assert!(SampleMode::parse("sometimes").is_err());
        assert_eq!(SampleMode::Ratio(16).to_string(), "1/16");
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(3u32).as_u64(), Some(3));
        assert_eq!(AttrValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::from("B2").as_str(), Some("B2"));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::U64(4).as_f64(), Some(4.0));
        assert_eq!(AttrValue::I64(-1).as_u64(), None);
    }
}
