//! # socialtrust-telemetry
//!
//! The observability substrate for the SocialTrust workspace: a
//! zero-heavy-dependency metrics registry, scoped span timers, and a
//! structured JSONL event log, with Prometheus text-exposition and JSON
//! export.
//!
//! Design points:
//!
//! * **Global-free.** There is no process-wide registry; a [`Telemetry`]
//!   bundle (registry + event sink) is constructed by the caller and
//!   threaded through `attach_telemetry` hooks. Tests and parallel
//!   simulations each get isolated registries.
//! * **Lock-free hot path.** [`Counter`]/[`Gauge`]/[`Histogram`] are `Arc`
//!   handles over `AtomicU64` cells; `f64` updates use a bit-cast
//!   compare-and-swap loop. Registration (name → handle) takes a short
//!   lock once; increments never do.
//! * **Detached-by-default.** Instrumented components construct detached
//!   metric handles so they carry zero configuration burden; attaching a
//!   [`Telemetry`] swaps in registry-backed handles and migrates the
//!   accumulated counts.
//! * **Snapshots are data.** [`Registry::snapshot`] produces a plain
//!   serializable [`Snapshot`]; [`Snapshot::diff`] turns lifetime totals
//!   into per-cycle deltas.
//!
//! ```
//! use socialtrust_telemetry::{Event, EventSink, Span, Telemetry};
//!
//! let telemetry = Telemetry::with_sink(EventSink::in_memory());
//! telemetry.registry().counter("cache_hits_total").inc();
//! {
//!     let _span = Span::enter(telemetry.registry(), "detect_all");
//! }
//! telemetry.sink().emit(Event::EvictionStorm { evicted: 64, full_flush: false });
//!
//! let snap = telemetry.registry().snapshot();
//! assert_eq!(snap.counter("cache_hits_total"), 1);
//! assert_eq!(snap.histogram("detect_all_seconds").unwrap().count, 1);
//! assert_eq!(telemetry.sink().events().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod log;
pub mod metric;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use event::{Event, EventSink};
pub use export::{prometheus_text, validate_exposition, MetricsExport};
pub use log::{Level, LogBuffer, Logger};
pub use metric::{Counter, Gauge, Histogram, DEFAULT_COUNT_BUCKETS, DEFAULT_SECONDS_BUCKETS};
pub use registry::{is_valid_metric_name, MetricHandle, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::Span;
pub use timeseries::{FlightRecorder, RecorderConfig};
pub use trace::{
    chrome_trace_json, AttrValue, RootGuard, SampleMode, SpanHandle, SpanId, SpanRecord, TraceDump,
    TraceId, TraceRecord, TraceStats, Tracer, TracerConfig,
};

/// The bundle instrumented components receive: a metric [`Registry`], an
/// [`EventSink`], and a decision-provenance [`Tracer`]. Cloning shares all
/// three.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    sink: EventSink,
    tracer: Tracer,
}

impl Telemetry {
    /// A telemetry bundle with a fresh registry, a disabled event sink,
    /// and a disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A telemetry bundle with a fresh registry and the given event sink
    /// (tracer disabled).
    pub fn with_sink(sink: EventSink) -> Self {
        Telemetry {
            registry: Registry::new(),
            sink,
            tracer: Tracer::disabled(),
        }
    }

    /// A telemetry bundle with a fresh registry and the given sink and
    /// tracer.
    pub fn with_parts(sink: EventSink, tracer: Tracer) -> Self {
        Telemetry {
            registry: Registry::new(),
            sink,
            tracer,
        }
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event sink.
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// The decision-provenance tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Starts a [`Span`] recording into `{name}_seconds` on this bundle's
    /// registry.
    pub fn span(&self, name: &str) -> Span {
        Span::enter(&self.registry, name)
    }
}
