//! Concurrency and property tests for the telemetry registry.

use proptest::prelude::*;
use socialtrust_telemetry::{prometheus_text, validate_exposition, Histogram, Registry};

/// Multi-threaded counter increments are never lost: the final value is
/// exactly the number of increments issued across all threads.
#[test]
fn concurrent_counter_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let registry = Registry::new();
    let counter = registry.counter("stress_total");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(
        registry.snapshot().counter("stress_total"),
        THREADS as u64 * PER_THREAD
    );
}

/// Concurrent f64 observations through the bit-cast CAS path are never
/// lost either: count and sum both land exactly (the addends are integers
/// small enough that f64 addition is exact in any order).
#[test]
fn concurrent_histogram_observations_preserve_count_and_sum() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Histogram::with_bounds(&[0.5, 1.5, 2.5]);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            scope.spawn(move || {
                let value = (t % 3) as f64;
                for _ in 0..PER_THREAD {
                    hist.observe(value);
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    // Threads 0,3,6 observed 0.0; 1,4,7 observed 1.0; 2,5 observed 2.0.
    let expected_sum = (3 * PER_THREAD) as f64 * 1.0 + (2 * PER_THREAD) as f64 * 2.0;
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(
        snap.counts,
        vec![3 * PER_THREAD, 3 * PER_THREAD, 2 * PER_THREAD]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket counts + sum reconstruct the observation stream within
    /// bucket resolution: every bucket tally matches a direct recount of
    /// the observations falling in its (lo, hi] range, the total count is
    /// exact, and the sum matches to floating-point accumulation error.
    #[test]
    fn histogram_reconstructs_observation_stream(
        observations in proptest::collection::vec(0.0f64..20.0, 1..400)
    ) {
        let bounds = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        let hist = Histogram::with_bounds(&bounds);
        for v in &observations {
            hist.observe(*v);
        }
        let snap = hist.snapshot();

        prop_assert_eq!(snap.count, observations.len() as u64);

        let direct_sum: f64 = observations.iter().sum();
        prop_assert!((snap.sum - direct_sum).abs() <= 1e-9 * (1.0 + direct_sum.abs()));

        for (i, hi) in bounds.iter().enumerate() {
            let lo = if i == 0 { f64::NEG_INFINITY } else { bounds[i - 1] };
            let expected = observations.iter().filter(|v| **v > lo && **v <= *hi).count();
            prop_assert_eq!(snap.counts[i], expected as u64);
        }
        let overflow = observations.iter().filter(|v| **v > bounds[bounds.len() - 1]).count();
        prop_assert_eq!(snap.count - snap.counts.iter().sum::<u64>(), overflow as u64);

        // Cumulative view is monotone and capped by the total count.
        let cumulative = snap.cumulative();
        for pair in cumulative.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        prop_assert!(cumulative.last().copied().unwrap_or(0) <= snap.count);
    }

    /// Any populated registry renders exposition text that passes the
    /// line-format validator.
    #[test]
    fn arbitrary_registry_exposition_validates(
        counters in proptest::collection::vec(0u64..1_000_000, 0..5),
        gauge_values in proptest::collection::vec(-1e6f64..1e6, 0..4),
        observations in proptest::collection::vec(0.0f64..30.0, 0..100),
    ) {
        let registry = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            registry.counter(&format!("c{i}_total")).add(*v);
        }
        for (i, v) in gauge_values.iter().enumerate() {
            registry.gauge(&format!("g{i}")).set(*v);
        }
        let hist = registry.histogram_with_bounds("h_seconds", &[0.1, 1.0, 10.0]);
        for v in &observations {
            hist.observe(*v);
        }
        let text = prometheus_text(&registry.snapshot());
        let samples = validate_exposition(&text);
        prop_assert!(samples.is_ok(), "validator rejected: {:?}\n{}", samples, text);
        // counters + gauges + (3 buckets + Inf + sum + count), plus the
        // p50/p95/p99 quantile gauges when the histogram is non-empty.
        let quantiles = if observations.is_empty() { 0 } else { 3 };
        prop_assert_eq!(
            samples.unwrap(),
            counters.len() + gauge_values.len() + 6 + quantiles
        );
    }
}
