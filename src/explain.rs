//! Audit-line reconstruction from decision-provenance trace dumps.
//!
//! One rescaled rating leaves three spans in its cycle's trace tree: the
//! `detector_verdict` that flagged the pair (with exact threshold
//! comparisons), the `gaussian_weight` that produced the Eq. (6)/(8)/(9)
//! damping factor, and the `rescale_rating` that applied it. This module
//! joins them back into [`ExplainEntry`] audit records — the shared
//! backend of `socialtrust-cli explain` and the server's
//! `GET /explain/{node}` endpoint.

use socialtrust_telemetry::trace::{names as span_names, SpanRecord};
use socialtrust_telemetry::TraceDump;

/// One audited rescale, joined across the `detector_verdict`,
/// `gaussian_weight`, and `rescale_rating` spans of its cycle trace.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExplainEntry {
    pub cycle: u64,
    pub rater: u64,
    pub ratee: u64,
    pub original: f64,
    pub adjusted: f64,
    pub weight: f64,
    /// Which paper equation produced the weight (`"Eq. 6"`/`"Eq. 8"`/
    /// `"Eq. 9"`), when the weight span was found.
    pub equation: Option<String>,
    /// Fired behavior codes (`"B1"`–`"B4"`); empty for pure-hysteresis
    /// (ghost) adjustments.
    pub behaviors: Vec<String>,
    /// True when the pair was adjusted from suspicion memory rather than a
    /// fresh verdict this cycle.
    pub ghost: bool,
    /// The full "because ..." audit sentence printed for this entry.
    pub audit: String,
}

/// The human-readable reason one behavior fired, from the verdict span's
/// recorded threshold comparisons.
pub fn behavior_clause(code: &str, v: &SpanRecord) -> String {
    let f = |key: &str| v.attr_f64(key).unwrap_or(f64::NAN);
    let n = |key: &str| v.attr_u64(key).unwrap_or(0);
    match code {
        "B1" => format!(
            "B1 fired because F⁺={} > T⁺ₜ={:.2} and Ω꜀={:.3} < T_cₗ={:.2}",
            n("f_pos"),
            f("t_pos"),
            f("omega_c"),
            f("t_c_low")
        ),
        "B2" => {
            let (t_r, ratee_rep, rater_rep) =
                (f("t_r"), f("ratee_reputation"), f("rater_reputation"));
            let low_side = if ratee_rep < t_r {
                format!("ratee R={ratee_rep:.4} < T_R={t_r:.4}")
            } else {
                format!("rater R={rater_rep:.4} < T_R={t_r:.4}")
            };
            format!(
                "B2 fired because F⁺={} > T⁺ₜ={:.2}, Ω꜀={:.3} > T_cₕ={:.2} and {}",
                n("f_pos"),
                f("t_pos"),
                f("omega_c"),
                f("t_c_high"),
                low_side
            )
        }
        "B3" => format!(
            "B3 fired because F⁺={} > T⁺ₜ={:.2} and Ωₛ={:.3} < T_sₗ={:.2}",
            n("f_pos"),
            f("t_pos"),
            f("omega_s"),
            f("t_s_low")
        ),
        "B4" => format!(
            "B4 fired because F⁻={} > T⁻ₜ={:.2} and Ωₛ={:.3} > T_sₕ={:.2}",
            n("f_neg"),
            f("t_neg"),
            f("omega_s"),
            f("t_s_high")
        ),
        other => other.to_string(),
    }
}

/// Join every `rescale_rating` span in `dump` with its cycle's verdict and
/// weight spans, producing audit entries in trace order. `node` keeps only
/// ratings where the node is rater or ratee; `cycle` keeps only the given
/// simulation cycle.
pub fn explain_entries(
    dump: &TraceDump,
    node: Option<u64>,
    cycle: Option<u64>,
) -> Vec<ExplainEntry> {
    let mut entries: Vec<ExplainEntry> = Vec::new();
    for trace in &dump.traces {
        let trace_cycle = trace.cycle().unwrap_or(0);
        if cycle.is_some_and(|c| c != trace_cycle) {
            continue;
        }
        // Join the cycle's decision spans by (rater, ratee).
        let by_pair = |name: &'static str| -> std::collections::BTreeMap<(u64, u64), &SpanRecord> {
            trace
                .named(name)
                .filter_map(|s| Some(((s.attr_u64("rater")?, s.attr_u64("ratee")?), s)))
                .collect()
        };
        let verdicts = by_pair(span_names::VERDICT);
        let weights = by_pair(span_names::WEIGHT);
        for rescale in trace.named(span_names::RESCALED_RATING) {
            let (Some(rater), Some(ratee)) = (rescale.attr_u64("rater"), rescale.attr_u64("ratee"))
            else {
                continue;
            };
            if node.is_some_and(|n| n != rater && n != ratee) {
                continue;
            }
            let pair = (rater, ratee);
            let verdict = verdicts.get(&pair);
            let weight_span = weights.get(&pair);
            let behaviors: Vec<String> = verdict
                .and_then(|v| v.attr_str("behaviors"))
                .map(|b| b.split('+').map(str::to_string).collect())
                .unwrap_or_default();
            let ghost = weight_span
                .and_then(|w| w.attr_bool("ghost"))
                .unwrap_or(verdict.is_none());
            let original = rescale.attr_f64("original").unwrap_or(f64::NAN);
            let adjusted = rescale.attr_f64("adjusted").unwrap_or(f64::NAN);
            let weight = rescale.attr_f64("weight").unwrap_or(f64::NAN);
            let equation = weight_span
                .and_then(|w| w.attr_str("eq"))
                .map(str::to_string);

            let mut reasons: Vec<String> = behaviors
                .iter()
                .filter_map(|code| verdict.map(|v| behavior_clause(code, v)))
                .collect();
            if reasons.is_empty() {
                reasons.push(
                    "pair remembered from a recent verdict (suspicion hysteresis)".to_string(),
                );
            }
            let weight_clause = match (&equation, weight_span) {
                (Some(eq), Some(w)) => format!(
                    "Gaussian weight {:.3} from {} (Ω꜀={:.3} vs μ꜀={:.3}, Ωₛ={:.3} vs μₛ={:.3})",
                    weight,
                    eq,
                    w.attr_f64("omega_c").unwrap_or(f64::NAN),
                    w.attr_f64("mean_c").unwrap_or(f64::NAN),
                    w.attr_f64("omega_s").unwrap_or(f64::NAN),
                    w.attr_f64("mean_s").unwrap_or(f64::NAN),
                ),
                _ => format!("Gaussian weight {weight:.3}"),
            };
            let audit = format!(
                "cycle {trace_cycle} · rating {rater}→{ratee} rescaled {original:.2}→{adjusted:.2}: {}; {weight_clause}",
                reasons.join("; "),
            );
            entries.push(ExplainEntry {
                cycle: trace_cycle,
                rater,
                ratee,
                original,
                adjusted,
                weight,
                equation,
                behaviors,
                ghost,
                audit,
            });
        }
    }
    entries
}
