//! `socialtrust-cli` — run SocialTrust simulations and trace analyses from
//! the command line.
//!
//! ```text
//! socialtrust-cli simulate --model pcm --b 0.6 --system et-st --runs 5
//! socialtrust-cli trace --users 2000 --transactions 45000 --csv trace.csv
//! socialtrust-cli help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); every flag is validated with a useful error message.

use std::process::ExitCode;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust::prelude::*;
use socialtrust::telemetry::{Level, Logger};
use socialtrust::trace::analysis::TraceAnalysis;
use socialtrust::trace::io::write_transactions_csv;

const HELP: &str = "\
socialtrust-cli — SocialTrust collusion-deterrence toolkit

USAGE:
  socialtrust-cli simulate [OPTIONS]   run a P2P collusion scenario
  socialtrust-cli explain  [OPTIONS]   audit rescaled ratings from a trace dump
  socialtrust-cli trace    [OPTIONS]   generate & analyze a synthetic Overstock trace
  socialtrust-cli help                 print this help

GLOBAL OPTIONS:
  --log-level <error|warn|info|debug|trace>
                                   minimum diagnostic severity on stderr
                                   (results stay on stdout)  [default: info]

SIMULATE OPTIONS:
  --model <none|pcm|mcm|mmm|neg>   collusion model            [default: pcm]
  --system <SYSTEM>                reputation system          [default: et-st]
        et | ebay | avg | fbsim | powertrust | et-st | ebay-st | et-st-dist
  --b <FLOAT>                      colluder good-behavior prob [default: 0.6]
  --nodes <INT>                    network size                [default: 200]
  --cycles <INT>                   simulation cycles           [default: 50]
  --runs <INT>                     seeded runs to aggregate    [default: 1]
  --seed <INT>                     base seed                   [default: 42]
  --compromised <INT>              compromised pretrusted      [default: 0]
  --distance <1|2|3>               colluder social distance    [default: 1]
  --falsified                      colluders falsify social info
  --oscillate <INT>                collusion burst period (cycles)
  --json <PATH>                    write the full result as JSON
  --metrics-out <PATH>             export telemetry (Prometheus text, metric
                                   snapshot, and structured events) as JSON
  --trace-out <PATH>               record decision-provenance traces and write
                                   the span-tree dump as JSON
  --trace-sample <off|full|N>      trace sampling: every cycle (full), one in
                                   N cycles, or none      [default: full]

EXPLAIN OPTIONS:
  --trace-out <PATH>               trace dump written by simulate  (required)
  --node <INT>                     only ratings where the node is rater/ratee
  --cycle <INT>                    only the given simulation cycle
  --limit <INT>                    max audit lines, 0 = unlimited  [default: 20]
  --json <PATH>                    write the audit entries as JSON
  --chrome-out <PATH>              export the span trees as Chrome trace-event
                                   JSON (chrome://tracing, Perfetto)

TRACE OPTIONS:
  --users <INT>                    platform users              [default: 2000]
  --transactions <INT>             transactions to generate    [default: 45000]
  --seed <INT>                     generator seed              [default: 42]
  --csv <PATH>                     export transactions as CSV
  --json <PATH>                    write the analysis as JSON
";

/// A parsed flag map with typed accessors and leftover validation.
#[derive(Debug)]
struct Args {
    pairs: Vec<(String, Option<String>)>,
    used: Vec<bool>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["--falsified"];

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let flag = &raw[i];
            if !flag.starts_with("--") {
                return Err(format!(
                    "unexpected argument {flag:?} (flags start with --)"
                ));
            }
            if SWITCHES.contains(&flag.as_str()) {
                pairs.push((flag.clone(), None));
                i += 1;
            } else {
                let value = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {flag} expects a value"))?;
                pairs.push((flag.clone(), Some(value.clone())));
                i += 2;
            }
        }
        let used = vec![false; pairs.len()];
        Ok(Args { pairs, used })
    }

    fn take(&mut self, flag: &str) -> Option<String> {
        for (i, (f, v)) in self.pairs.iter().enumerate() {
            if f == flag && !self.used[i] {
                self.used[i] = true;
                return v.clone().or(Some(String::new()));
            }
        }
        None
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str, default: T) -> Result<T, String> {
        match self.take(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag {flag} got an unparsable value {raw:?}")),
        }
    }

    fn finish(&self) -> Result<(), String> {
        for (i, (f, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unknown flag {f}"));
            }
        }
        Ok(())
    }
}

fn parse_model(s: &str) -> Result<CollusionModel, String> {
    Ok(match s {
        "none" => CollusionModel::None,
        "pcm" => CollusionModel::PairWise,
        "mcm" => CollusionModel::MultiNode,
        "mmm" => CollusionModel::MultiMutual,
        "neg" => CollusionModel::NegativeCampaign,
        other => return Err(format!("unknown model {other:?} (none|pcm|mcm|mmm|neg)")),
    })
}

fn parse_system(s: &str) -> Result<ReputationKind, String> {
    Ok(match s {
        "et" => ReputationKind::EigenTrust,
        "ebay" => ReputationKind::EBay,
        "avg" => ReputationKind::SimpleAverage,
        "fbsim" => ReputationKind::FeedbackSimilarity,
        "powertrust" => ReputationKind::PowerTrust,
        "et-st" => ReputationKind::EigenTrustWithSocialTrust,
        "ebay-st" => ReputationKind::EBayWithSocialTrust,
        "et-st-dist" => ReputationKind::EigenTrustWithSocialTrustDistributed,
        other => {
            return Err(format!(
                "unknown system {other:?} (et|ebay|avg|fbsim|powertrust|et-st|ebay-st|et-st-dist)"
            ))
        }
    })
}

fn cmd_simulate(mut args: Args, log: &Logger) -> Result<(), String> {
    let model = parse_model(&args.take("--model").unwrap_or_else(|| "pcm".into()))?;
    let system = parse_system(&args.take("--system").unwrap_or_else(|| "et-st".into()))?;
    let b: f64 = args.take_parsed("--b", 0.6)?;
    let nodes: usize = args.take_parsed("--nodes", 200)?;
    let cycles: usize = args.take_parsed("--cycles", 50)?;
    let runs: usize = args.take_parsed("--runs", 1)?;
    let seed: u64 = args.take_parsed("--seed", 42)?;
    let compromised: usize = args.take_parsed("--compromised", 0)?;
    let distance: u32 = args.take_parsed("--distance", 1)?;
    let falsified = args.take("--falsified").is_some();
    let oscillate: usize = args.take_parsed("--oscillate", 0)?;
    let json = args.take("--json");
    let metrics_out = args.take("--metrics-out");
    let trace_out = args.take("--trace-out");
    let trace_sample = args.take("--trace-sample");
    args.finish()?;

    if !(0.0..=1.0).contains(&b) {
        return Err(format!("--b must be a probability, got {b}"));
    }
    let mut scenario = if nodes == 200 {
        ScenarioConfig::paper_default()
    } else {
        let mut s = ScenarioConfig::paper_default();
        s.nodes = nodes;
        s.pretrusted_count = (nodes / 22).max(1);
        s.colluder_count = (nodes * 15 / 100).max(2);
        s.boosted_count = (s.colluder_count / 4).max(1);
        // Keep the paper's T_R at 2× the uniform share.
        s.selection_reputation_threshold = 2.0 / nodes as f64;
        s
    };
    scenario = scenario
        .with_collusion(model)
        .with_colluder_behavior(b)
        .with_cycles(cycles)
        .with_compromised_pretrusted(compromised)
        .with_falsified_social_info(falsified)
        .with_colluder_distance(distance);
    if oscillate > 0 {
        scenario = scenario.with_oscillation(oscillate);
    }
    scenario.validate();

    log.debug(
        "simulate",
        "scenario configured",
        &[
            ("colluders", scenario.colluder_count.into()),
            ("pretrusted", scenario.pretrusted_count.into()),
            ("oscillate", oscillate.into()),
        ],
    );
    println!(
        "simulate: {model} · {system} · B={b} · {nodes} nodes · {cycles} cycles · {runs} run(s) · seed {seed}"
    );
    // Telemetry is only wired up when an export is requested: the
    // instrumented runner runs seeds sequentially so all runs share one
    // registry, whereas the plain path keeps its parallel speed.
    let tracer = match (&trace_out, trace_sample.as_deref()) {
        (None, None) => Tracer::disabled(),
        (None, Some(_)) => return Err("--trace-sample requires --trace-out".into()),
        (Some(_), raw) => {
            // Default to full sampling: someone asking for a trace dump
            // wants every cycle explainable.
            let sample = match raw {
                None => SampleMode::Full,
                Some(raw) => SampleMode::parse(raw)?,
            };
            Tracer::new(TracerConfig::with_sample(sample))
        }
    };
    let telemetry = (metrics_out.is_some() || trace_out.is_some()).then(|| {
        let sink = if metrics_out.is_some() {
            EventSink::in_memory()
        } else {
            EventSink::disabled()
        };
        Telemetry::with_parts(sink, tracer)
    });
    let summary = match &telemetry {
        Some(t) => run_scenario_multi_with_telemetry(&scenario, system, seed, runs, t),
        None => run_scenario_multi(&scenario, system, seed, runs),
    };
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();
    let pretrusted = scenario.pretrusted_ids();
    let (pct, pct_ci) = summary.percent_requests_to_colluders();
    println!(
        "  colluder mean reputation : {:.6}",
        summary.mean_reputation_of(&colluders)
    );
    println!(
        "  normal   mean reputation : {:.6}",
        summary.mean_reputation_of(&normals)
    );
    println!(
        "  pretrusted mean reputation: {:.6}",
        summary.mean_reputation_of(&pretrusted)
    );
    println!("  requests to colluders    : {pct:.2}% ± {pct_ci:.2}");
    let (p1, median, p99) = summary.convergence_percentiles(0.001);
    println!(
        "  colluder suppression (cycles, <0.001): p1 {p1:.0} / median {median:.0} / p99 {p99:.0}"
    );
    if let Some(((it_mean, it_ci), (res_mean, res_ci))) = summary.final_convergence_stats() {
        println!(
            "  eigentrust final update  : {it_mean:.1} ± {it_ci:.1} iterations, L1 residual {res_mean:.3e} ± {res_ci:.3e}"
        );
    }
    if let (Some(path), Some(t)) = (&metrics_out, &telemetry) {
        MetricsExport::collect(t)
            .write_to(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }
    if let (Some(path), Some(t)) = (&trace_out, &telemetry) {
        let dump = TraceDump::collect(t.tracer());
        dump.write_to(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "  wrote {path} ({} trace(s), {} spans)",
            dump.traces.len(),
            dump.stats.spans_recorded
        );
    }
    if let Some(path) = json {
        let data = serde_json::to_string_pretty(&summary.runs).map_err(|e| e.to_string())?;
        std::fs::write(&path, data).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }
    Ok(())
}

fn cmd_explain(mut args: Args, log: &Logger) -> Result<(), String> {
    let input = args
        .take("--trace-out")
        .ok_or("explain requires --trace-out <path> (a dump written by simulate)")?;
    let node: Option<u64> = args
        .take("--node")
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("flag --node got an unparsable value {raw:?}"))
        })
        .transpose()?;
    let cycle: Option<u64> = args
        .take("--cycle")
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("flag --cycle got an unparsable value {raw:?}"))
        })
        .transpose()?;
    let limit: usize = args.take_parsed("--limit", 20)?;
    let json_out = args.take("--json");
    let chrome_out = args.take("--chrome-out");
    args.finish()?;

    let dump = TraceDump::read_from(&input).map_err(|e| format!("reading {input}: {e}"))?;
    log.debug(
        "explain",
        "trace dump loaded",
        &[
            ("path", input.as_str().into()),
            ("traces", dump.traces.len().into()),
            ("spans_dropped", dump.stats.spans_dropped.into()),
        ],
    );
    println!(
        "explain: {} — {} trace(s), {} spans recorded, {} dropped",
        input,
        dump.traces.len(),
        dump.stats.spans_recorded,
        dump.stats.spans_dropped
    );

    let entries = socialtrust::explain::explain_entries(&dump, node, cycle);

    if entries.is_empty() {
        println!("  no rescaled ratings matched the filters");
    }
    let shown = if limit == 0 {
        entries.len()
    } else {
        limit.min(entries.len())
    };
    for entry in &entries[..shown] {
        println!("  {}", entry.audit);
    }
    if shown < entries.len() {
        println!(
            "  … {} more (raise --limit or filter with --node/--cycle)",
            entries.len() - shown
        );
    }
    if let Some(path) = json_out {
        let data = serde_json::to_string_pretty(&entries).map_err(|e| e.to_string())?;
        std::fs::write(&path, data).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }
    if let Some(path) = chrome_out {
        std::fs::write(&path, chrome_trace_json(&dump))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path} (load in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn cmd_trace(mut args: Args, log: &Logger) -> Result<(), String> {
    let users: usize = args.take_parsed("--users", 2000)?;
    let transactions: usize = args.take_parsed("--transactions", 45_000)?;
    let seed: u64 = args.take_parsed("--seed", 42)?;
    let csv = args.take("--csv");
    let json = args.take("--json");
    args.finish()?;

    let config = TraceConfig {
        users,
        transactions,
        ..TraceConfig::default()
    };
    println!("trace: {users} users · {transactions} transactions · seed {seed}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let platform = generate(&config, &mut rng);
    log.debug(
        "trace",
        "synthetic platform generated",
        &[
            ("users", users.into()),
            ("transactions", transactions.into()),
        ],
    );
    let analysis = TraceAnalysis::new(&platform);
    let business_c = analysis.business_reputation_correlation();
    let personal_c = analysis.personal_reputation_correlation();
    let top3 = analysis.top3_category_share();
    let sim30 = analysis.share_transactions_above_similarity(0.3);
    println!("  O1 business-network C   : {business_c:.3}  (paper: 0.996)");
    println!("  O2 personal-network C   : {personal_c:.3}  (paper: 0.092)");
    println!("  O5 top-3 category share : {top3:.3}  (paper: ~0.88)");
    println!("  O6 share > 0.3 similarity: {sim30:.3}  (paper: 0.6)");
    for s in analysis.rating_stats_by_distance() {
        println!(
            "  O3/O4 distance {}: avg value {:+.2}, avg frequency {:.2}",
            s.distance, s.avg_rating_value, s.avg_rating_count
        );
    }
    if let Some(path) = csv {
        let mut file = std::fs::File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
        write_transactions_csv(&platform, &mut file).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }
    if let Some(path) = json {
        #[derive(serde::Serialize)]
        struct TraceReport {
            business_correlation: f64,
            personal_correlation: f64,
            top3_share: f64,
            share_above_30pct_similarity: f64,
        }
        let report = TraceReport {
            business_correlation: business_c,
            personal_correlation: personal_c,
            top3_share: top3,
            share_above_30pct_similarity: sim30,
        };
        let data = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, data).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }
    Ok(())
}

/// Strip every `--log-level VALUE` pair out of `argv` (it is a global
/// flag, valid before or after the subcommand) and return the requested
/// level, defaulting to `info`.
fn extract_log_level(argv: &mut Vec<String>) -> Result<Level, String> {
    let mut level = Level::Info;
    while let Some(pos) = argv.iter().position(|a| a == "--log-level") {
        if pos + 1 >= argv.len() {
            return Err("flag --log-level expects a value".into());
        }
        let raw = argv.remove(pos + 1);
        argv.remove(pos);
        level = raw
            .parse()
            .map_err(|_| format!("flag --log-level got an unparsable value {raw:?}"))?;
    }
    Ok(level)
}

fn run(argv: Vec<String>, log: &Logger) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(Args::parse(&argv[1..])?, log),
        Some("explain") => cmd_explain(Args::parse(&argv[1..])?, log),
        Some("trace") => cmd_trace(Args::parse(&argv[1..])?, log),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown command {other:?}; try `socialtrust-cli help`"
        )),
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let log = match extract_log_level(&mut argv) {
        Ok(level) => Logger::stderr(level, false),
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(argv, &log) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            log.error("cli", &message, &[]);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_switches() {
        let mut a = Args::parse(&argv("--model pcm --falsified --seed 7")).unwrap();
        assert_eq!(a.take("--model"), Some("pcm".into()));
        assert!(a.take("--falsified").is_some());
        assert_eq!(a.take_parsed("--seed", 0u64).unwrap(), 7);
        a.finish().unwrap();
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = Args::parse(&argv("--bogus 1")).unwrap();
        assert!(a.finish().unwrap_err().contains("--bogus"));
    }

    #[test]
    fn missing_value_is_rejected() {
        assert!(Args::parse(&argv("--seed"))
            .unwrap_err()
            .contains("expects a value"));
    }

    #[test]
    fn bad_value_is_reported_with_flag_name() {
        let mut a = Args::parse(&argv("--seed notanumber")).unwrap();
        let err = a.take_parsed("--seed", 0u64).unwrap_err();
        assert!(err.contains("--seed"));
        assert!(err.contains("notanumber"));
    }

    #[test]
    fn model_and_system_parsers() {
        assert_eq!(parse_model("mmm").unwrap(), CollusionModel::MultiMutual);
        assert_eq!(
            parse_model("neg").unwrap(),
            CollusionModel::NegativeCampaign
        );
        assert!(parse_model("xyz").is_err());
        assert_eq!(
            parse_system("et-st").unwrap(),
            ReputationKind::EigenTrustWithSocialTrust
        );
        assert!(parse_system("foo").is_err());
    }

    #[test]
    fn help_and_unknown_command() {
        let log = Logger::disabled();
        assert!(run(vec![], &log).is_ok());
        assert!(run(argv("help"), &log).is_ok());
        assert!(run(argv("frobnicate"), &log).is_err());
    }

    #[test]
    fn log_level_is_extracted_anywhere_in_argv() {
        let mut v = argv("simulate --log-level debug --nodes 40");
        assert_eq!(extract_log_level(&mut v).unwrap(), Level::Debug);
        assert_eq!(v, argv("simulate --nodes 40"));
        // Before the subcommand works too, and the default is info.
        let mut v = argv("--log-level warn trace");
        assert_eq!(extract_log_level(&mut v).unwrap(), Level::Warn);
        let mut v = argv("trace --users 10");
        assert_eq!(extract_log_level(&mut v).unwrap(), Level::Info);
        // Bad values and a missing value are reported.
        let mut v = argv("--log-level shouty");
        assert!(extract_log_level(&mut v).unwrap_err().contains("shouty"));
        let mut v = argv("simulate --log-level");
        assert!(extract_log_level(&mut v)
            .unwrap_err()
            .contains("expects a value"));
    }

    #[test]
    fn simulate_smoke() {
        // A tiny end-to-end run through the CLI path.
        let result = run(
            argv("simulate --model pcm --system ebay --nodes 40 --cycles 2 --runs 1 --seed 3"),
            &Logger::disabled(),
        );
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn simulate_metrics_out_exports_parsable_telemetry() {
        let path = std::env::temp_dir().join("socialtrust-cli-metrics-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let mut cmd = argv("simulate --model pcm --system et-st --nodes 40 --cycles 2 --runs 1 --seed 3 --metrics-out");
        cmd.push(path_str);
        let result = run(cmd, &Logger::disabled());
        assert!(result.is_ok(), "{result:?}");
        let data = std::fs::read_to_string(&path).unwrap();
        let value: socialtrust::telemetry::MetricsExport = serde_json::from_str(&data).unwrap();
        let prometheus = value.prometheus;
        socialtrust::telemetry::validate_exposition(&prometheus).unwrap();
        for family in [
            "detector_b1_triggers_total",
            "cache_hits_total",
            "eigentrust_iterations",
            "sim_cycle_seconds",
        ] {
            assert!(prometheus.contains(family), "missing {family}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_rejects_bad_probability() {
        let err = run(
            argv("simulate --b 1.5 --nodes 40 --cycles 1"),
            &Logger::disabled(),
        )
        .unwrap_err();
        assert!(err.contains("--b"));
    }

    #[test]
    fn trace_smoke() {
        let result = run(
            argv("trace --users 150 --transactions 1000 --seed 2"),
            &Logger::disabled(),
        );
        assert!(result.is_ok(), "{result:?}");
    }
}
