//! # socialtrust
//!
//! Facade crate for the SocialTrust reproduction — *Leveraging Social
//! Networks to Combat Collusion in Reputation Systems for Peer-to-Peer
//! Networks* (Li, Shen & Sapra, IEEE TC 2012 / IPPS 2011).
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`socnet`] — social graph, distance, closeness Ωc, interests Ωs.
//! * [`reputation`] — rating ledger, EigenTrust, eBay-style accumulation.
//! * [`core`] — the SocialTrust mechanism itself: Gaussian rating
//!   adjustment, suspicious-behavior detection (B1–B4), the
//!   `WithSocialTrust` decorator, and the distributed-manager model.
//! * [`sim`] — the P2P simulator with PCM/MCM/MMM collusion models used to
//!   regenerate the paper's evaluation.
//! * [`trace`] — the synthetic Overstock-style trace substrate and the
//!   Section-3 analysis toolkit.
//! * [`telemetry`] — zero-heavy-dependency observability: a registry of
//!   atomic counters/gauges/histograms, span timers, a structured JSONL
//!   event sink, and Prometheus/JSON export (see DESIGN.md's
//!   "Observability contract" for the metric inventory).
//! * [`explain`] — audit-line reconstruction from trace dumps, shared by
//!   `socialtrust-cli explain` and the server's `/explain` endpoint.
//!
//! ## Quickstart
//!
//! ```
//! use socialtrust::prelude::*;
//!
//! // Run the paper's pair-wise collusion scenario with and without
//! // SocialTrust protecting EigenTrust.
//! let scenario = ScenarioConfig::paper_default()
//!     .with_collusion(CollusionModel::PairWise)
//!     .with_colluder_behavior(0.6)
//!     .with_cycles(5); // keep the doctest fast; the paper uses 50
//! let unprotected = run_scenario(&scenario, ReputationKind::EigenTrust, 42);
//! let protected = run_scenario(
//!     &scenario,
//!     ReputationKind::EigenTrustWithSocialTrust,
//!     42,
//! );
//! let colluders = scenario.colluder_ids();
//! assert!(
//!     protected.final_summary.mean_reputation(&colluders)
//!         <= unprotected.final_summary.mean_reputation(&colluders)
//! );
//! ```

pub mod explain;

pub use socialtrust_core as core;
pub use socialtrust_reputation as reputation;
pub use socialtrust_sim as sim;
pub use socialtrust_socnet as socnet;
pub use socialtrust_telemetry as telemetry;
pub use socialtrust_trace as trace;

/// One-stop imports for applications.
pub mod prelude {
    pub use socialtrust_core::prelude::*;
    pub use socialtrust_reputation::prelude::*;
    pub use socialtrust_sim::prelude::*;
    pub use socialtrust_socnet::prelude::*;
    pub use socialtrust_telemetry::{
        chrome_trace_json, EventSink, MetricsExport, SampleMode, Telemetry, TraceDump, Tracer,
        TracerConfig,
    };
    pub use socialtrust_trace::prelude::*;
}
