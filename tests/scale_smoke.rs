//! Release-mode scale smoke test: a 100k-node network must run full
//! decorated reputation cycles end to end, the sharded snapshot store must
//! actually partition at that size, and shard boundaries must stay
//! invisible in results.
//!
//! `#[ignore]`d by default — it takes tens of seconds in release mode and
//! far longer in debug. CI runs it explicitly with
//! `cargo test --release --test scale_smoke -- --ignored`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_core::prelude::{
    SharedSocialContext, SocialContext, SocialTrustConfig, WithSocialTrust,
};
use socialtrust_reputation::prelude::{EigenTrust, Rating, ReputationSystem};
use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::closeness::ClosenessConfig;
use socialtrust_socnet::interest::InterestProfile;
use socialtrust_socnet::snapshot::SnapshotStore;
use socialtrust_socnet::NodeId;

const N: usize = 100_000;
const INTERESTS: u16 = 40;

#[test]
#[ignore = "release-mode scale smoke; run explicitly with -- --ignored"]
fn hundred_k_node_full_cycles() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = connected_random_graph(N, 6.0, (1, 2), &mut rng);
    let mut t = socialtrust_socnet::interaction::InteractionTracker::new(N);
    for _ in 0..N {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    let profiles: Vec<InterestProfile> = random_interests(N, INTERESTS, (2, 6), &mut rng)
        .into_iter()
        .map(InterestProfile::new)
        .collect();

    // The store must shard at this size, and a pinned single-shard store
    // must agree bit-for-bit on a sample of pairs.
    let config = ClosenessConfig::default();
    let sharded = SnapshotStore::new();
    let unsharded = SnapshotStore::with_shards(1);
    let snap = sharded.snapshot(&g, &t, &profiles, 0, config);
    let base = unsharded.snapshot(&g, &t, &profiles, 0, config);
    assert!(
        snap.shard_count() > 1,
        "expected a partitioned store at {N} nodes, got {} shard(s)",
        snap.shard_count()
    );
    for _ in 0..2_000 {
        let a = NodeId::from(rng.gen_range(0..N));
        let b = NodeId::from(rng.gen_range(0..N));
        assert_eq!(
            snap.closeness(a, b).to_bits(),
            base.closeness(a, b).to_bits(),
            "sharded closeness({a}, {b}) diverged"
        );
        assert_eq!(
            snap.weighted_similarity(a, b).to_bits(),
            base.weighted_similarity(a, b).to_bits()
        );
    }
    let bytes_per_node = snap.bytes_per_node();
    assert!(
        bytes_per_node > 0.0 && bytes_per_node < 10_000.0,
        "implausible snapshot footprint: {bytes_per_node} bytes/node"
    );
    drop((snap, base, sharded, unsharded));

    // Two full decorated cycles over the same network.
    let ctx = SharedSocialContext::new(SocialContext::from_parts(g, t, profiles, INTERESTS));
    let pretrusted: Vec<NodeId> = (0..32usize).map(NodeId::from).collect();
    let mut engine = WithSocialTrust::new(
        EigenTrust::with_defaults(N, &pretrusted),
        ctx.clone(),
        SocialTrustConfig::default(),
    );
    for _ in 0..2 {
        for _ in 0..1_000 {
            let rater = rng.gen_range(0..N);
            for _ in 0..5 {
                let ratee = rng.gen_range(0..N);
                if rater == ratee {
                    continue;
                }
                let value = if rng.gen_bool(0.9) { 1.0 } else { -1.0 };
                engine.record(Rating::new(NodeId::from(rater), NodeId::from(ratee), value));
                ctx.write()
                    .record_interaction(NodeId::from(rater), NodeId::from(ratee), 1.0);
            }
        }
        engine.end_cycle();
        let reps = engine.reputations();
        assert_eq!(reps.len(), N);
        assert!(reps.iter().all(|&v| v >= -1e-12 && v.is_finite()));
        let sum: f64 = reps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "trust vector sum = {sum}");
    }
    let (rebuilds, _patches) = ctx.read().snapshot_stats();
    assert!(rebuilds >= 1, "the decorated cycles never built a snapshot");
}
