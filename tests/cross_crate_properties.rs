//! Cross-crate property tests: invariants that only hold when all the
//! pieces cooperate (world building, engine, reputation engines, the
//! SocialTrust layer).

use proptest::prelude::*;
use socialtrust::prelude::*;

fn tiny_scenario(model_idx: usize, b: f64, cycles: usize) -> ScenarioConfig {
    let model = [
        CollusionModel::None,
        CollusionModel::PairWise,
        CollusionModel::MultiNode,
        CollusionModel::MultiMutual,
        CollusionModel::NegativeCampaign,
    ][model_idx];
    let mut s = ScenarioConfig::small()
        .with_collusion(model)
        .with_colluder_behavior(b)
        .with_cycles(cycles);
    s.query_cycles = 5;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any scenario, any system: reputations stay a sub-distribution
    /// (non-negative, finite, summing to ~1 or 0) and request accounting
    /// is consistent.
    #[test]
    fn reputations_and_accounting_stay_sane(
        model_idx in 0usize..5,
        b in prop_oneof![Just(0.2), Just(0.6)],
        kind_idx in 0usize..7,
        whitewash in proptest::bool::ANY,
        seed in 0u64..50,
    ) {
        let kind = [
            ReputationKind::EigenTrust,
            ReputationKind::EBay,
            ReputationKind::SimpleAverage,
            ReputationKind::FeedbackSimilarity,
            ReputationKind::PowerTrust,
            ReputationKind::EigenTrustWithSocialTrust,
            ReputationKind::EBayWithSocialTrust,
        ][kind_idx];
        let scenario = tiny_scenario(model_idx, b, 4).with_whitewash(whitewash);
        let r = run_scenario(&scenario, kind, seed);
        let reps = r.final_summary.values();
        prop_assert_eq!(reps.len(), scenario.nodes);
        prop_assert!(reps.iter().all(|&v| v.is_finite() && v >= -1e-12));
        let sum: f64 = reps.iter().sum();
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(r.requests_to_colluders <= r.requests_total);
        prop_assert_eq!(r.per_cycle_colluder_mean.len(), scenario.sim_cycles);
    }

    /// SocialTrust never flags anybody in a collusion-free world with
    /// this scenario's organic traffic volume (false-positive guard).
    #[test]
    fn no_collusion_means_no_adjustments(seed in 0u64..30) {
        let scenario = tiny_scenario(0, 0.6, 4);
        let r = run_scenario(&scenario, ReputationKind::EigenTrustWithSocialTrust, seed);
        prop_assert_eq!(r.ratings_adjusted, 0, "adjusted {} organic ratings", r.ratings_adjusted);
    }

    /// The distributed deployment is result-identical to the centralized
    /// one for every scenario and seed.
    #[test]
    fn distributed_centralized_equivalence(
        model_idx in 0usize..4,
        seed in 0u64..30,
    ) {
        let scenario = tiny_scenario(model_idx, 0.6, 3);
        let central = run_scenario(&scenario, ReputationKind::EigenTrustWithSocialTrust, seed);
        let distributed = run_scenario(
            &scenario,
            ReputationKind::EigenTrustWithSocialTrustDistributed,
            seed,
        );
        prop_assert_eq!(central.final_summary, distributed.final_summary);
    }

    /// Determinism holds across the whole pipeline for every system kind.
    #[test]
    fn pipeline_is_deterministic(kind_idx in 0usize..6, seed in 0u64..20) {
        let kind = ReputationKind::ALL[kind_idx];
        let scenario = tiny_scenario(1, 0.6, 3);
        let a = run_scenario(&scenario, kind, seed);
        let b = run_scenario(&scenario, kind, seed);
        prop_assert_eq!(a.final_summary, b.final_summary);
        prop_assert_eq!(a.requests_total, b.requests_total);
        prop_assert_eq!(a.suspicions_flagged, b.suspicions_flagged);
    }
}
