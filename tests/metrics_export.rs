//! Acceptance test for the telemetry subsystem: one instrumented
//! simulation must export every metric family the observability contract
//! (DESIGN.md) promises, with a Prometheus text exposition that passes the
//! line-format validator, and structured events for every pipeline stage.

use socialtrust::prelude::*;
use socialtrust::telemetry::{validate_exposition, Event};

/// Every metric family the export must contain, per the observability
/// contract: B1–B4 trigger counters, the three latency histograms, the
/// cache counters, and the EigenTrust convergence gauges.
const REQUIRED_FAMILIES: &[&str] = &[
    "detector_b1_triggers_total",
    "detector_b2_triggers_total",
    "detector_b3_triggers_total",
    "detector_b4_triggers_total",
    "detector_suspicions_total",
    "detect_seconds",
    "gaussian_weight_seconds",
    "reputation_update_seconds",
    "decorator_rescaled_ratings_total",
    "cache_hits_total",
    "cache_misses_total",
    "cache_evictions_total",
    "eigentrust_iterations",
    "eigentrust_residual",
    "eigentrust_warm_start",
    "eigentrust_warm_starts_total",
    "eigentrust_cycles_total",
    "sim_cycle_seconds",
    "sim_query_phase_seconds",
    "sim_update_phase_seconds",
];

#[test]
fn instrumented_run_exports_all_contract_metric_families() {
    let scenario = ScenarioConfig::small()
        .with_collusion(CollusionModel::PairWise)
        .with_cycles(4);
    let telemetry = Telemetry::with_sink(EventSink::in_memory());
    let result = run_scenario_with_telemetry(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        7,
        &telemetry,
    );

    let export = MetricsExport::collect(&telemetry);
    let names = telemetry.registry().metric_names();
    for family in REQUIRED_FAMILIES {
        assert!(
            names.iter().any(|n| n == family),
            "metric family {family} missing from the registry: {names:?}"
        );
        assert!(
            export.prometheus.contains(family),
            "metric family {family} missing from the Prometheus exposition"
        );
    }
    validate_exposition(&export.prometheus).expect("exposition must validate");

    // The snapshot carries real readings, not just registered zeros.
    let snap = &export.metrics;
    assert!(snap.counter("detector_suspicions_total") > 0);
    assert!(snap.counter("cache_hits_total") + snap.counter("cache_misses_total") > 0);
    assert_eq!(
        snap.gauge("eigentrust_iterations"),
        result.final_convergence().map(|c| c.iterations as f64)
    );
    assert_eq!(
        snap.counter("eigentrust_cycles_total"),
        scenario.sim_cycles as u64
    );
    assert_eq!(
        snap.histogram("sim_cycle_seconds").unwrap().count,
        scenario.sim_cycles as u64
    );

    // Events: one EigenTrust convergence per cycle, and detection verdicts
    // for the colluding pairs.
    let events = telemetry.sink().events();
    let convergence_events = events
        .iter()
        .filter(|e| matches!(e, Event::EigenTrustConvergence { .. }))
        .count();
    assert_eq!(convergence_events, scenario.sim_cycles);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::DetectionVerdict { .. })),
        "collusion run must emit detection verdicts"
    );

    // JSON round-trip of the full export.
    let json = export.to_json();
    let parsed: MetricsExport = serde_json::from_str(&json).expect("export round-trips");
    assert_eq!(parsed.metrics, export.metrics);
}
