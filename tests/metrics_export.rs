//! Acceptance test for the telemetry subsystem: one instrumented
//! simulation must export every metric family the observability contract
//! (DESIGN.md) promises, with a Prometheus text exposition that passes the
//! line-format validator, and structured events for every pipeline stage.

use serde::{Deserialize, Serialize};
use socialtrust::prelude::*;
use socialtrust::telemetry::{validate_exposition, Event};

/// Every metric family the export must contain, per the observability
/// contract: B1–B4 trigger counters, the three latency histograms, the
/// cache counters, the CSR-snapshot refresh counters, and the EigenTrust
/// convergence gauges.
const REQUIRED_FAMILIES: &[&str] = &[
    "detector_b1_triggers_total",
    "detector_b2_triggers_total",
    "detector_b3_triggers_total",
    "detector_b4_triggers_total",
    "detector_suspicions_total",
    "detect_seconds",
    "gaussian_weight_seconds",
    "reputation_update_seconds",
    "decorator_rescaled_ratings_total",
    "cache_hits_total",
    "cache_misses_total",
    "cache_evictions_total",
    "snapshot_rebuilds_total",
    "snapshot_patches_total",
    "snapshot_rebuild_seconds",
    "eigentrust_iterations",
    "eigentrust_residual",
    "eigentrust_warm_start",
    "eigentrust_warm_starts_total",
    "eigentrust_cycles_total",
    "sim_cycle_seconds",
    "sim_query_phase_seconds",
    "sim_update_phase_seconds",
];

#[test]
fn instrumented_run_exports_all_contract_metric_families() {
    let scenario = ScenarioConfig::small()
        .with_collusion(CollusionModel::PairWise)
        .with_cycles(4);
    let telemetry = Telemetry::with_sink(EventSink::in_memory());
    let result = run_scenario_with_telemetry(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        7,
        &telemetry,
    );

    let export = MetricsExport::collect(&telemetry);
    let names = telemetry.registry().metric_names();
    for family in REQUIRED_FAMILIES {
        assert!(
            names.iter().any(|n| n == family),
            "metric family {family} missing from the registry: {names:?}"
        );
        assert!(
            export.prometheus.contains(family),
            "metric family {family} missing from the Prometheus exposition"
        );
    }
    validate_exposition(&export.prometheus).expect("exposition must validate");

    // The snapshot carries real readings, not just registered zeros.
    let snap = &export.metrics;
    assert!(snap.counter("detector_suspicions_total") > 0);
    // Every cycle's detection + Gaussian pass reads one CSR snapshot; the
    // first acquisition builds it, later cycles refresh it (patch or
    // rebuild depending on whether the graph mutated structurally).
    assert!(snap.counter("snapshot_rebuilds_total") >= 1);
    assert_eq!(
        snap.histogram("snapshot_rebuild_seconds").unwrap().count,
        snap.counter("snapshot_rebuilds_total")
    );
    assert_eq!(
        snap.gauge("eigentrust_iterations"),
        result.final_convergence().map(|c| c.iterations as f64)
    );
    assert_eq!(
        snap.counter("eigentrust_cycles_total"),
        scenario.sim_cycles as u64
    );
    assert_eq!(
        snap.histogram("sim_cycle_seconds").unwrap().count,
        scenario.sim_cycles as u64
    );

    // Events: one EigenTrust convergence per cycle, and detection verdicts
    // for the colluding pairs.
    let events = telemetry.sink().events();
    let convergence_events = events
        .iter()
        .filter(|e| matches!(e, Event::EigenTrustConvergence { .. }))
        .count();
    assert_eq!(convergence_events, scenario.sim_cycles);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::DetectionVerdict { .. })),
        "collusion run must emit detection verdicts"
    );

    // Quantile gauges: every non-empty contract histogram exports
    // p50/p95/p99 both as `{quantile="pXX"}` exposition samples and in the
    // JSON bundle's `quantiles` map, and the estimates are ordered.
    for family in ["detect_seconds", "sim_cycle_seconds"] {
        let q = export
            .quantiles
            .get(family)
            .unwrap_or_else(|| panic!("quantiles missing for {family}"));
        assert_eq!(q.keys().collect::<Vec<_>>(), vec!["p50", "p95", "p99"]);
        assert!(q["p50"] <= q["p95"] && q["p95"] <= q["p99"]);
        for label in ["p50", "p95", "p99"] {
            assert!(
                export
                    .prometheus
                    .contains(&format!("{family}{{quantile=\"{label}\"}}")),
                "{family} {label} sample missing from exposition"
            );
        }
    }

    // The exposition is deterministically ordered: family names sorted.
    let families: Vec<&str> = export
        .prometheus
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split(' ').next())
        .collect();
    let mut sorted = families.clone();
    sorted.sort_unstable();
    assert_eq!(families, sorted, "exposition families must be name-sorted");

    // JSON round-trip of the full export.
    let json = export.to_json();
    let parsed: MetricsExport = serde_json::from_str(&json).expect("export round-trips");
    assert_eq!(parsed.metrics, export.metrics);
    assert_eq!(parsed.quantiles, export.quantiles);
}

/// A structural graph flush must surface as a `snapshot_rebuild` event
/// carrying the dirty-node count, alongside the rebuild counter bump —
/// the snapshot analogue of the cache's eviction-storm event.
#[test]
fn structural_flush_emits_snapshot_rebuild_event() {
    let telemetry = Telemetry::with_sink(EventSink::in_memory());
    let mut ctx = SocialContext::new(16, 8);
    ctx.attach_telemetry(&telemetry);
    let cfg = ClosenessConfig::default();

    ctx.graph_mut()
        .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
    ctx.record_interaction(NodeId(0), NodeId(1), 2.0);
    let _ = ctx.snapshot(cfg); // initial build: rebuild, but no structural flush
    assert!(telemetry.sink().events().is_empty());

    // Interaction-only dirt: patched, still no event.
    ctx.record_interaction(NodeId(1), NodeId(0), 1.0);
    let _ = ctx.snapshot(cfg);
    assert!(telemetry.sink().events().is_empty());

    // Structural churn: two edges touch three distinct nodes.
    ctx.graph_mut()
        .add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
    ctx.graph_mut()
        .add_relationship(NodeId(3), NodeId(4), Relationship::friendship());
    let _ = ctx.snapshot(cfg);

    let events = telemetry.sink().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::SnapshotRebuild { dirty_nodes: 3 })),
        "expected snapshot_rebuild with 3 dirty nodes, got {events:?}"
    );
    let snap = telemetry.registry().snapshot();
    assert_eq!(snap.counter("snapshot_rebuilds_total"), 2);
    assert_eq!(snap.counter("snapshot_patches_total"), 1);

    // The event survives the JSONL round-trip like every other kind.
    let rebuild = events
        .iter()
        .find(|e| matches!(e, Event::SnapshotRebuild { .. }))
        .unwrap();
    let value = rebuild.to_value();
    assert_eq!(Event::from_value(&value).unwrap(), *rebuild);
}
