//! Facade-level tests: the `socialtrust` crate's public surface is usable
//! on its own — the way a downstream application would consume it.

use socialtrust::core::context::{SharedSocialContext, SocialContext};
use socialtrust::prelude::*;

#[test]
fn prelude_exposes_the_working_set() {
    // Social substrate.
    let mut g = SocialGraph::new(3);
    g.add_relationship(NodeId(0), NodeId(1), Relationship::kinship());
    assert!(g.are_adjacent(NodeId(0), NodeId(1)));
    let mut t = InteractionTracker::new(3);
    t.record(NodeId(0), NodeId(1), 2.0);
    let model = ClosenessModel::new(&g, &t, ClosenessConfig::default());
    assert!(model.closeness(NodeId(0), NodeId(1)) > 0.0);
    // Interests.
    let a = InterestSet::from_ids([1u16, 2]);
    let b = InterestSet::from_ids([2u16, 3]);
    assert!(socialtrust::socnet::interest::similarity(&a, &b) > 0.0);
    // Reputation systems.
    let mut et = EigenTrust::with_defaults(3, &[NodeId(0)]);
    et.record(Rating::new(NodeId(0), NodeId(1), 1.0));
    et.end_cycle();
    assert!(et.reputation(NodeId(1)) > 0.0);
    let mut ebay = EBayModel::new(3);
    ebay.record(Rating::new(NodeId(0), NodeId(1), 1.0));
    ebay.end_cycle();
    assert!(ebay.reputation(NodeId(1)) > 0.0);
}

#[test]
fn decorator_composes_via_facade() {
    let ctx = SharedSocialContext::new(SocialContext::new(4, 8));
    let mut sys = WithSocialTrust::new(
        EigenTrust::with_defaults(4, &[NodeId(0)]),
        ctx,
        SocialTrustConfig::default(),
    );
    for _ in 0..3 {
        sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
        sys.end_cycle();
    }
    assert_eq!(sys.name(), "EigenTrust+SocialTrust");
    assert!(sys.reputation(NodeId(1)) > 0.0);
}

#[test]
fn trace_pipeline_via_facade() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let platform = generate(
        &TraceConfig {
            users: 200,
            transactions: 2_000,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    assert_eq!(platform.transactions().len(), 2_000);
    let discovered = crawl(&platform, UserId::from(0u32), Some(50));
    assert_eq!(discovered.len(), 50);
    let analysis = TraceAnalysis::new(&platform);
    assert!(analysis.business_reputation_correlation() > 0.0);
}

#[test]
fn scenario_runner_via_facade() {
    let scenario = ScenarioConfig::small().with_cycles(3);
    let result = run_scenario(&scenario, ReputationKind::SimpleAverage, 5);
    assert_eq!(result.final_summary.values().len(), scenario.nodes);
    assert_eq!(result.system_name, "SimpleAverage");
}

#[test]
fn module_paths_are_reachable() {
    // The facade re-exports whole crates under stable names.
    let _ = socialtrust::socnet::distance::bfs_distance(
        &SocialGraph::new(2),
        NodeId(0),
        NodeId(1),
        None,
    );
    let _ = socialtrust::reputation::normalize::normalize_to_simplex(&[1.0, 1.0]);
    let _ = socialtrust::core::gaussian::gaussian(0.0, 1.0, 0.0, 1.0);
    let _ = socialtrust::sim::collusion::CollusionModel::PairWise;
    let _ = socialtrust::trace::generator::TraceConfig::default();
}
