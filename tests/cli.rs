//! Integration tests driving the `socialtrust-cli` binary end-to-end.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_socialtrust-cli"))
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
    assert!(text.contains("trace"));
}

#[test]
fn no_args_also_prints_usage() {
    let out = cli().output().expect("run cli");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = cli().arg("bogus").output().expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = cli()
        .args(["simulate", "--frobnicate", "1"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--frobnicate"));
}

#[test]
fn simulate_small_run_reports_metrics() {
    let out = cli()
        .args([
            "simulate", "--model", "pcm", "--system", "ebay", "--nodes", "40", "--cycles", "3",
            "--runs", "1", "--seed", "5",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("colluder mean reputation"));
    assert!(text.contains("requests to colluders"));
}

#[test]
fn simulate_writes_json() {
    let dir = std::env::temp_dir().join("socialtrust_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("run.json");
    let out = cli()
        .args([
            "simulate", "--model", "none", "--system", "avg", "--nodes", "40", "--cycles", "2",
            "--runs", "1", "--json",
        ])
        .arg(&path)
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let data = std::fs::read_to_string(&path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&data).expect("valid json");
    assert!(parsed.is_array(), "per-run results array");
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_writes_csv_roundtrippable_by_the_library() {
    let dir = std::env::temp_dir().join("socialtrust_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("trace.csv");
    let out = cli()
        .args([
            "trace",
            "--users",
            "120",
            "--transactions",
            "800",
            "--seed",
            "3",
            "--csv",
        ])
        .arg(&path)
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let file = std::fs::File::open(&path).expect("csv written");
    let txs = socialtrust::trace::io::read_transactions_csv(std::io::BufReader::new(file))
        .expect("parseable csv");
    assert_eq!(txs.len(), 800);
    std::fs::remove_file(&path).ok();
}
