//! End-to-end integration tests spanning every crate: scenario → world →
//! engine → reputation system → SocialTrust → metrics.

use socialtrust::prelude::*;

fn small(model: CollusionModel, b: f64) -> ScenarioConfig {
    ScenarioConfig::small()
        .with_collusion(model)
        .with_colluder_behavior(b)
        .with_cycles(12)
}

/// Average a metric over a few seeds so assertions don't hinge on one
/// random draw.
fn mean_over_seeds(
    scenario: &ScenarioConfig,
    kind: ReputationKind,
    f: impl Fn(&RunResult) -> f64,
) -> f64 {
    let seeds = [11u64, 22, 33];
    seeds
        .iter()
        .map(|&s| f(&run_scenario(scenario, kind, s)))
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn socialtrust_suppresses_pcm_collusion() {
    let scenario = small(CollusionModel::PairWise, 0.6);
    let colluders = scenario.colluder_ids();
    let coll_mean = |r: &RunResult| r.final_summary.mean_reputation(&colluders);
    let plain = mean_over_seeds(&scenario, ReputationKind::EigenTrust, coll_mean);
    let guarded = mean_over_seeds(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        coll_mean,
    );
    assert!(
        guarded < plain / 2.0,
        "SocialTrust must at least halve colluder reputation: {guarded} vs {plain}"
    );
}

#[test]
fn socialtrust_reduces_requests_to_colluders() {
    let scenario = small(CollusionModel::PairWise, 0.6);
    let pct = |r: &RunResult| r.percent_requests_to_colluders();
    let plain = mean_over_seeds(&scenario, ReputationKind::EigenTrust, pct);
    let guarded = mean_over_seeds(&scenario, ReputationKind::EigenTrustWithSocialTrust, pct);
    assert!(
        guarded < plain,
        "traffic to colluders must drop: {guarded}% vs {plain}%"
    );
}

#[test]
fn socialtrust_works_over_ebay_too() {
    let scenario = small(CollusionModel::PairWise, 0.6);
    let colluders = scenario.colluder_ids();
    let coll_mean = |r: &RunResult| r.final_summary.mean_reputation(&colluders);
    let plain = mean_over_seeds(&scenario, ReputationKind::EBay, coll_mean);
    let guarded = mean_over_seeds(&scenario, ReputationKind::EBayWithSocialTrust, coll_mean);
    assert!(guarded < plain, "{guarded} vs {plain}");
}

#[test]
fn honest_nodes_keep_their_reputation_under_socialtrust() {
    // With no collusion at all, the SocialTrust layer must not punish the
    // honest population: normal nodes keep reputations comparable to the
    // unprotected run.
    let scenario = small(CollusionModel::None, 0.6);
    let normals = scenario.normal_ids();
    let norm_mean = |r: &RunResult| r.final_summary.mean_reputation(&normals);
    let plain = mean_over_seeds(&scenario, ReputationKind::EigenTrust, norm_mean);
    let guarded = mean_over_seeds(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        norm_mean,
    );
    assert!(
        (guarded - plain).abs() < plain * 0.5,
        "normal reputations should be roughly unchanged: {guarded} vs {plain}"
    );
}

#[test]
fn mmm_is_harder_than_mcm_for_plain_eigentrust() {
    // The paper's Figures 11 vs 13: the mutual loop (MMM) lifts colluders
    // more than one-directional boosting (MCM) at B=0.6.
    let mcm = small(CollusionModel::MultiNode, 0.6);
    let mmm = small(CollusionModel::MultiMutual, 0.6);
    let colluders = mcm.colluder_ids();
    let coll_mean = |r: &RunResult| r.final_summary.mean_reputation(&colluders);
    let mcm_rep = mean_over_seeds(&mcm, ReputationKind::EigenTrust, coll_mean);
    let mmm_rep = mean_over_seeds(&mmm, ReputationKind::EigenTrust, coll_mean);
    assert!(
        mmm_rep > mcm_rep,
        "MMM ({mmm_rep}) should beat MCM ({mcm_rep}) against plain EigenTrust"
    );
}

#[test]
fn falsified_social_info_does_not_break_socialtrust() {
    let scenario = small(CollusionModel::PairWise, 0.6).with_falsified_social_info(true);
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();
    let seeds = [5u64, 6, 7];
    let mut wins = 0;
    for &s in &seeds {
        let r = run_scenario(&scenario, ReputationKind::EigenTrustWithSocialTrust, s);
        if r.final_summary.mean_reputation(&colluders) < r.final_summary.mean_reputation(&normals) {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "colluders must stay below normals in most falsified runs ({wins}/3)"
    );
}

#[test]
fn compromised_pretrusted_nodes_help_colluders_in_plain_eigentrust() {
    let clean = small(CollusionModel::PairWise, 0.2);
    let compromised = small(CollusionModel::PairWise, 0.2).with_compromised_pretrusted(2);
    let colluders = clean.colluder_ids();
    let coll_mean = |r: &RunResult| r.final_summary.mean_reputation(&colluders);
    let base = mean_over_seeds(&clean, ReputationKind::EigenTrust, coll_mean);
    let boosted = mean_over_seeds(&compromised, ReputationKind::EigenTrust, coll_mean);
    assert!(
        boosted > base,
        "compromised pretrusted endorsements must lift colluders: {boosted} vs {base}"
    );
}

#[test]
fn socialtrust_handles_compromised_pretrusted() {
    let scenario = small(CollusionModel::PairWise, 0.2).with_compromised_pretrusted(2);
    let colluders = scenario.colluder_ids();
    let coll_mean = |r: &RunResult| r.final_summary.mean_reputation(&colluders);
    let plain = mean_over_seeds(&scenario, ReputationKind::EigenTrust, coll_mean);
    let guarded = mean_over_seeds(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        coll_mean,
    );
    assert!(guarded < plain, "{guarded} vs {plain}");
}

#[test]
fn full_runs_are_reproducible_across_all_kinds() {
    let scenario = small(CollusionModel::MultiMutual, 0.6);
    for kind in ReputationKind::ALL {
        let a = run_scenario(&scenario, kind, 77);
        let b = run_scenario(&scenario, kind, 77);
        assert_eq!(a.final_summary, b.final_summary, "{kind} not reproducible");
        assert_eq!(a.requests_total, b.requests_total);
    }
}

#[test]
fn multi_run_confidence_intervals_are_finite() {
    let scenario = small(CollusionModel::PairWise, 0.6);
    let m = run_scenario_multi(&scenario, ReputationKind::EigenTrustWithSocialTrust, 1, 3);
    assert_eq!(m.runs.len(), 3);
    for (&mean, &ci) in m.mean_reputation.iter().zip(&m.ci95_reputation) {
        assert!(mean.is_finite() && mean >= 0.0);
        assert!(ci.is_finite() && ci >= 0.0);
    }
    let (pct, ci) = m.percent_requests_to_colluders();
    assert!((0.0..=100.0).contains(&pct));
    assert!(ci >= 0.0);
}

#[test]
fn convergence_metric_reports_suppression() {
    let scenario = small(CollusionModel::PairWise, 0.2).with_cycles(20);
    let m = run_scenario_multi(&scenario, ReputationKind::EigenTrustWithSocialTrust, 1, 3);
    let (p1, median, p99) = m.convergence_percentiles(0.001);
    assert!(p1 <= median && median <= p99);
    assert!(p99 <= 20.0, "must converge within the run: p99 = {p99}");
}
