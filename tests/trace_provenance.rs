//! Acceptance tests for the decision-provenance tracing subsystem:
//! trace-tree well-formedness under the parallel detection pipeline,
//! provenance coverage (every rescaled rating is explainable), tracing
//! determinism (instrumentation never perturbs results), and the CLI
//! `explain` surface naming behaviors, thresholds, and weights.

use std::collections::BTreeSet;
use std::process::Command;

use proptest::prelude::*;
use socialtrust::prelude::*;
use socialtrust::telemetry::trace::{names, TraceRecord};
use socialtrust::telemetry::TraceStats;

fn traced_scenario(model_idx: usize, cycles: usize) -> ScenarioConfig {
    let model = [
        CollusionModel::PairWise,
        CollusionModel::MultiNode,
        CollusionModel::MultiMutual,
    ][model_idx];
    let mut s = ScenarioConfig::small()
        .with_collusion(model)
        .with_colluder_behavior(0.6)
        .with_cycles(cycles);
    s.query_cycles = 5;
    s
}

fn run_traced(scenario: &ScenarioConfig, seed: u64) -> (Vec<TraceRecord>, TraceStats, RunResult) {
    let tracer = Tracer::new(TracerConfig::with_sample(SampleMode::Full));
    let telemetry = Telemetry::with_parts(EventSink::disabled(), tracer);
    let result = run_scenario_with_telemetry(
        scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        seed,
        &telemetry,
    );
    let traces = telemetry.tracer().take_traces();
    let stats = telemetry.tracer().stats();
    (traces, stats, result)
}

/// Distinct `(rater, ratee)` attribute pairs over spans named `name`,
/// optionally keeping only non-ghost spans.
fn pairs(trace: &TraceRecord, name: &str, skip_ghosts: bool) -> BTreeSet<(u64, u64)> {
    trace
        .named(name)
        .filter(|s| !(skip_ghosts && s.attr_bool("ghost") == Some(true)))
        .filter_map(|s| Some((s.attr_u64("rater")?, s.attr_u64("ratee")?)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under full sampling and the parallel `detect_all` pipeline, every
    /// committed trace is a well-formed tree: unique span ids, every
    /// parent present, exactly one root, and the provenance chain closed —
    /// each rescaled rating has a Gaussian-weight span for its pair, and
    /// each non-ghost weight span has a detector verdict for its pair.
    #[test]
    fn traces_are_well_formed_trees_with_closed_provenance(
        model_idx in 0usize..3,
        cycles in 2usize..4,
        seed in 0u64..20,
    ) {
        let scenario = traced_scenario(model_idx, cycles);
        let (traces, stats, _) = run_traced(&scenario, seed);
        prop_assert_eq!(traces.len(), cycles, "one root trace per sim cycle");
        prop_assert_eq!(stats.spans_dropped, 0, "small runs must not hit the span cap");

        for trace in &traces {
            // Tree shape: unique ids, parents exist, a single root.
            let ids: BTreeSet<u64> = trace.spans.iter().map(|s| s.id.0).collect();
            prop_assert_eq!(ids.len(), trace.spans.len(), "duplicate span ids");
            let mut roots = 0usize;
            for span in &trace.spans {
                match span.parent {
                    Some(parent) => {
                        prop_assert!(ids.contains(&parent.0), "orphan span {:?}", span.name);
                        prop_assert!(parent != span.id, "self-parented span");
                    }
                    None => roots += 1,
                }
            }
            prop_assert_eq!(roots, 1, "exactly one root per trace");
            prop_assert_eq!(
                trace.root_span().map(|r| r.name.as_str()),
                Some(names::CYCLE)
            );

            // Provenance closure across the pipeline stages.
            let rescaled = pairs(trace, names::RESCALED_RATING, false);
            let weighted = pairs(trace, names::WEIGHT, false);
            let weighted_live = pairs(trace, names::WEIGHT, true);
            let verdicts = pairs(trace, names::VERDICT, false);
            prop_assert!(
                rescaled.is_subset(&weighted),
                "rescaled rating without a Gaussian-weight span: {:?}",
                rescaled.difference(&weighted).collect::<Vec<_>>()
            );
            prop_assert!(
                weighted_live.is_subset(&verdicts),
                "non-ghost weight span without a detector verdict: {:?}",
                weighted_live.difference(&verdicts).collect::<Vec<_>>()
            );

            // Every weight span carries the numbers `explain` renders.
            for span in trace.named(names::WEIGHT) {
                prop_assert!(span.attr_f64("weight").is_some_and(|w| (0.0..=1.0).contains(&w)));
                prop_assert!(span.attr_str("eq").is_some());
            }
            // Every verdict span names at least one fired behavior.
            for span in trace.named(names::VERDICT) {
                prop_assert!(span.attr_str("behaviors").is_some_and(|b| !b.is_empty()));
            }
        }
    }
}

/// Tracing must be a pure observer: a run with full tracing and a run with
/// tracing disabled produce bit-identical `RunResult`s (compared through
/// their serialized form, which covers every field including f64s).
#[test]
fn tracing_on_and_off_yield_identical_results() {
    let scenario = traced_scenario(0, 3);
    for seed in [7u64, 19] {
        let (_, _, traced) = run_traced(&scenario, seed);
        let plain = run_scenario(&scenario, ReputationKind::EigenTrustWithSocialTrust, seed);
        assert_eq!(
            serde_json::to_string(&traced).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "tracing perturbed the simulation at seed {seed}"
        );
    }
}

/// Sampled tracing records a strict subset of cycles but still commits
/// only well-formed trees.
#[test]
fn sampled_tracing_records_a_subset_of_cycles() {
    let scenario = traced_scenario(0, 4);
    let tracer = Tracer::new(TracerConfig::with_sample(SampleMode::Ratio(2)));
    let telemetry = Telemetry::with_parts(EventSink::disabled(), tracer);
    run_scenario_with_telemetry(
        &scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        7,
        &telemetry,
    );
    let traces = telemetry.tracer().take_traces();
    assert_eq!(traces.len(), 2, "1-in-2 sampling over 4 cycles");
    let cycles: Vec<u64> = traces.iter().filter_map(|t| t.cycle()).collect();
    assert_eq!(cycles, vec![0, 2]);
}

/// End-to-end CLI acceptance: `simulate --trace-out` then `explain` must
/// name, for at least one rescaled rating in a collusion scenario, the
/// fired behavior, a concrete threshold comparison, and the applied
/// Gaussian weight.
#[test]
fn cli_explain_names_behavior_thresholds_and_weight() {
    let dir = std::env::temp_dir().join("socialtrust-provenance-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join(format!("trace-{}.json", std::process::id()));
    let chrome_path = dir.join(format!("chrome-{}.json", std::process::id()));

    let out = Command::new(env!("CARGO_BIN_EXE_socialtrust-cli"))
        .args([
            "simulate",
            "--model",
            "pcm",
            "--system",
            "et-st",
            "--nodes",
            "24",
            "--cycles",
            "2",
            "--runs",
            "1",
            "--seed",
            "3",
            "--trace-out",
        ])
        .arg(&trace_path)
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(env!("CARGO_BIN_EXE_socialtrust-cli"))
        .args(["explain", "--trace-out"])
        .arg(&trace_path)
        .args(["--limit", "10", "--chrome-out"])
        .arg(&chrome_path)
        .output()
        .expect("run explain");
    assert!(
        out.status.success(),
        "explain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("rescaled"),
        "no rescaled-rating audit line in:\n{text}"
    );
    assert!(
        text.contains("fired because"),
        "audit must name the fired behavior:\n{text}"
    );
    assert!(
        ["B1", "B2", "B3", "B4"].iter().any(|b| text.contains(b)),
        "audit must cite a B1–B4 behavior:\n{text}"
    );
    assert!(
        text.contains("T⁺ₜ") || text.contains("T⁻ₜ") || text.contains("T_R"),
        "audit must show a concrete threshold comparison:\n{text}"
    );
    assert!(
        text.contains("Gaussian weight"),
        "audit must show the applied Gaussian weight:\n{text}"
    );

    // The Chrome export is valid trace-event JSON with ph/ts/dur fields.
    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(ev.get("ph").is_some() && ev.get("ts").is_some() && ev.get("dur").is_some());
    }

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&chrome_path).ok();
}
