#!/usr/bin/env bash
# Compare freshly measured BENCH_*.json files against the committed
# baselines and fail when a tracked timing regresses by more than the
# allowed percentage.
#
# Usage:
#   scripts/bench_diff.sh <fresh-dir> [allowed-percent]
#
# <fresh-dir> holds newly generated BENCH_*.json files (same names as the
# committed ones at the repo root). For every committed BENCH_*.json with
# a fresh counterpart, every key ending in `_seconds` is compared:
# fresh > committed * (1 + allowed/100) fails the script. Ratio keys
# (speedups, overhead percentages) and metadata are reported but never
# gate. A missing fresh file — or a committed key absent from the fresh
# file — is skipped with a WARNING: the committed baseline is the
# contract, the fresh dir is whatever subset this CI run measured (e.g.
# the scale bench smoke regenerates only its smallest size). Skips are
# tallied in the final summary so a silently-shrinking fresh set is
# visible in the CI log; only zero comparisons overall is fatal.
#
# Timings measured on CI runners are noisy; the default gate is
# deliberately loose (25%) to catch real regressions, not jitter.

set -euo pipefail

fresh_dir="${1:?usage: bench_diff.sh <fresh-dir> [allowed-percent]}"
allowed="${2:-25}"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
compared=0
skipped=0

for committed in "$repo_root"/BENCH_*.json; do
    [ -e "$committed" ] || continue
    name="$(basename "$committed")"
    fresh="$fresh_dir/$name"
    if [ ! -e "$fresh" ]; then
        echo "bench_diff: WARNING: $name has no fresh counterpart in $fresh_dir — committed baseline not checked this run" >&2
        skipped=$((skipped + 1))
        continue
    fi
    compared=$((compared + 1))
    # Emit "key committed fresh" rows for every shared numeric *_seconds
    # key, then judge each against the allowed regression.
    while read -r key base new; do
        worse=$(python3 -c "print(100.0 * ($new / $base - 1.0))")
        verdict="ok"
        if python3 -c "exit(0 if $new > $base * (1 + $allowed / 100.0) else 1)"; then
            verdict="REGRESSED"
            status=1
        fi
        printf 'bench_diff: %s %s: %s -> %s (%+.1f%%, allowed +%s%%) %s\n' \
            "$name" "$key" "$base" "$new" "$worse" "$allowed" "$verdict"
    done < <(python3 - "$committed" "$fresh" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    new = json.load(f)
for key, value in base.items():
    if not key.endswith("_seconds"):
        continue
    if not isinstance(value, (int, float)) or value <= 0:
        continue
    if not isinstance(new.get(key), (int, float)):
        print(f"bench_diff: {key} — no fresh measurement, skipping", file=sys.stderr)
        continue
    print(key, repr(float(value)), repr(float(new[key])))
PY
)
done

if [ "$compared" -eq 0 ]; then
    echo "bench_diff: no committed BENCH_*.json had a fresh counterpart" >&2
    exit 1
fi
[ "$skipped" -gt 0 ] && echo "bench_diff: WARNING: $skipped committed baseline file(s) skipped without a fresh measurement" >&2
[ "$status" -eq 0 ] && echo "bench_diff: all $compared file(s) within +$allowed% ($skipped skipped)"
exit "$status"
