//! Offline vendored shim of the `rayon` API subset this workspace uses.
//!
//! Parallelism is real (std::thread::scope with one contiguous chunk per
//! worker) but eager: each `map`/`filter_map` adapter runs its closure over
//! all items in a parallel pass and stores the results, rather than fusing
//! lazily like upstream rayon. Semantics the workspace relies on are
//! preserved: order-stable results, `Send`/`Sync` bounds, and a speedup on
//! multi-core hosts.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

use std::num::NonZeroUsize;

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
}

/// Run `f` over every item on a pool of scoped threads, preserving order.
fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *out = Some(f(slot.take().expect("item consumed twice")));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker left a gap"))
        .collect()
}

/// An in-memory "parallel iterator": adapters evaluate eagerly in a
/// parallel pass; terminal operations drain the buffered items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: parallel_map(self.items, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn reduce<Id, F>(self, identity: Id, op: F) -> T
    where
        Id: Fn() -> T,
        F: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1)).collect();
        let sums: Vec<u32> = data.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(sums[10], 21);
    }

    #[test]
    fn filter_map_drops_none() {
        let odd: Vec<u32> = (0..100u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd.len(), 50);
        assert_eq!(odd[0], 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }
}
