//! Offline vendored `serde_json` shim: renders and parses the vendored
//! `serde` shim's [`Value`] tree.
//!
//! JSON it emits is standard; two conventions of the shim's data model to
//! note: non-finite floats render as `null` (matching upstream
//! `serde_json`), and maps with non-string keys render as arrays of
//! `[key, value]` pairs (upstream errors; the shim keeps roundtrips
//! working).

pub use serde::Value;

use serde::{Deserialize, Serialize};

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize any supported type from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::U64(u) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float formatting.
                let _ = std::fmt::Write::write_fmt(out, format_args!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
        Value::Map(pairs) => {
            // Non-string-keyed map: array of [key, value] pairs.
            let as_seq = Value::Seq(
                pairs
                    .iter()
                    .map(|(k, v)| Value::Seq(vec![k.clone(), v.clone()]))
                    .collect(),
            );
            write_value(out, &as_seq, indent, depth);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs unsupported (never emitted by
                            // the writer, which only escapes control chars).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of plain bytes and validate
                    // UTF-8 over just that run. Quote and backslash are
                    // ASCII, so they can never split a multi-byte scalar.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn nested_roundtrip() {
        let data: Vec<(u32, f64)> = vec![(1, 0.25), (2, -3.5)];
        let json = to_string(&data).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &f in &[0.1f64, 1e-9, 123456.789, -2.5e10] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn value_api_matches_tests_expectations() {
        let v: Value = from_str("[{\"a\": 1}, {\"a\": 2}]").unwrap();
        assert!(v.is_array());
        assert_eq!(v.as_array().unwrap()[1].get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn string_runs_with_multibyte_and_escapes() {
        let back: String = from_str("\"Ω꜀ → μₛ\\n \\\"x\\\" é\"").unwrap();
        assert_eq!(back, "Ω꜀ → μₛ\n \"x\" é");
        // Strings are consumed as byte runs, not char-at-a-time over the
        // remaining input — a many-string document must parse in one pass.
        let big = format!("[{}]", vec!["\"Ω꜀ plain é text\""; 100_000].join(","));
        let v: Vec<String> = from_str(&big).unwrap();
        assert_eq!(v.len(), 100_000);
        assert_eq!(v[99_999], "Ω꜀ plain é text");
    }

    #[test]
    fn pretty_output_parses_back() {
        let data = vec![vec![1u16, 2], vec![3]];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u16>> = from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }
}
