//! Offline vendored shim of the `serde` API subset this workspace uses.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this shim
//! routes everything through an owned [`Value`] tree: `Serialize` lowers a
//! type to a `Value`, `Deserialize` lifts one back. `serde_json` (also
//! vendored) renders and parses that tree. The derive macros (vendored
//! `serde_derive`) generate `to_value`/`from_value` pairs for the plain
//! struct/enum shapes the workspace declares (named structs, tuple structs,
//! unit-variant enums; no `#[serde(...)]` attributes).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The intermediate data-model tree shared by `Serialize`/`Deserialize`
/// and rendered by the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also the parse target for all JSON integers that
    /// fit; unsigned lifts widen through `U64`).
    I64(i64),
    /// Unsigned integers above `i64::MAX`.
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Struct fields / string-keyed maps, insertion-ordered.
    Object(Vec<(String, Value)>),
    /// Maps with non-string keys, kept as key/value pairs (rendered as an
    /// array of two-element arrays).
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Seq(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Field lookup on objects (`None` elsewhere), mirroring
    /// `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the shared [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of the shared [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Named-field lookup helper used by derived `Deserialize` impls.
pub fn get_field<'v>(
    fields: &'v [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {type_name}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected integer for {}, got {value:?}",
                        stringify!($t)
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer for {}, got {value:?}",
                        stringify!($t)
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {value:?}")))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys that can render as JSON object keys.
pub trait StringKey: Sized {
    fn to_key(&self) -> Option<String>;
    fn from_key(key: &str) -> Option<Self>;
}

impl StringKey for String {
    fn to_key(&self) -> Option<String> {
        Some(self.clone())
    }
    fn from_key(key: &str) -> Option<Self> {
        Some(key.to_owned())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // String-keyed maps render as objects; everything else falls back
        // to an array of [key, value] pairs (self-consistent with the
        // Deserialize impl below).
        let pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::Str(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Map(pairs)
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            // Pair-array form produced by JSON rendering of `Value::Map`.
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        // Deterministic output despite hash ordering.
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::Str(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Map(pairs)
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1u32, 2u32, 3u32).to_value();
        assert_eq!(<(u32, u32, u32)>::from_value(&v).unwrap(), (1, 2, 3));
    }

    #[test]
    fn btreemap_nonstring_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 0.5f64);
        let v = m.to_value();
        let back: BTreeMap<(u32, u32), f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
