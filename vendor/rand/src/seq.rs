//! Slice sampling helpers (`rand::seq::SliceRandom` subset).

use crate::Rng;

/// Extension trait for random slice operations.
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them if the slice
    /// is shorter). Returned as an iterator so callers can `.copied()`.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        // Partial Fisher–Yates over an index vector: uniform without
        // replacement, O(len) setup, O(amount) sampling.
        let amount = amount.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore as _;

    struct Xorshift(u64);
    impl crate::RngCore for Xorshift {
        fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = Xorshift(99);
        let data: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = data.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // Asking for more than available yields everything.
        let all: Vec<u32> = data.choose_multiple(&mut rng, 500).copied().collect();
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xorshift(3);
        let mut data: Vec<u32> = (0..32).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        let _ = rng.next_u64();
    }
}
