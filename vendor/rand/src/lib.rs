//! Offline vendored shim of the subset of the `rand` 0.8 API this workspace
//! uses. The workspace's build environment has no access to crates.io, so
//! the external `rand` crate is replaced by this path dependency.
//!
//! The shim is API-compatible for the calls the workspace makes
//! (`SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `seq::SliceRandom::{choose, choose_multiple, shuffle}`) but does not
//! promise value-stream compatibility with upstream `rand`; all workspace
//! tests are property-based and only rely on determinism and statistical
//! quality, both of which hold.

pub mod seq;

/// Low-level source of randomness. `u64` is the native output; everything
/// else derives from it.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`Rng::gen`). For floats this is the half-open unit interval `[0, 1)`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Element types `gen_range` can sample uniformly. The `SampleRange` impls
/// below are generic over this trait (like upstream's `SampleUniform`) so
/// that an unannotated float/int literal in a range unifies with the
/// return type during inference.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(lo, hi, true, rng)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is ≤ 2⁻⁶⁴·bound, irrelevant here).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

int_uniform_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for the generators we ship).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through SplitMix64, like upstream
    /// `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // xorshift so the statistical helpers below see varied bits.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(0x1234_5678_9ABC_DEF1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-0.8f64..0.8);
            assert!((-0.8..0.8).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
