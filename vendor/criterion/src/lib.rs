//! Offline vendored shim of the `criterion` API subset this workspace
//! uses. It performs real wall-clock measurement (calibrated iteration
//! counts, warmup pass, mean/min ns per iteration printed per benchmark)
//! but none of upstream's statistical machinery, HTML reports, or baseline
//! comparison.
//!
//! Running with `--test` (as `cargo test --benches` does for
//! `harness = false` targets) executes each benchmark exactly once as a
//! smoke test. Other CLI arguments are treated as name filters, matching
//! `cargo bench <filter>` behaviour; unrecognised flags are ignored.

use std::time::{Duration, Instant};

/// Re-exported for parity with upstream; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Target measurement time per benchmark (upstream defaults to 5s; the
/// shim keeps runs shorter since it reports only mean/min).
const TARGET_MEASURE: Duration = Duration::from_millis(400);
const TARGET_WARMUP: Duration = Duration::from_millis(100);

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The measurement context passed to benchmark closures.
pub struct Bencher {
    /// One-shot smoke-test mode (`--test`).
    test_mode: bool,
    /// Measured samples as (iterations, elapsed).
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            test_mode,
            samples: Vec::new(),
        }
    }

    /// Measure `routine` by running it in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup & calibration: find an iteration count that runs long
        // enough for the clock to resolve well.
        let mut iters_per_sample = 1u64;
        let warmup_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(10) || warmup_start.elapsed() >= TARGET_WARMUP {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        // Measurement.
        let measure_start = Instant::now();
        while measure_start.elapsed() < TARGET_MEASURE {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((iters_per_sample, t0.elapsed()));
        }
    }

    /// Measure `routine` with a fresh untimed `setup` input per call.
    pub fn iter_batched<S, O, Setup, F>(
        &mut self,
        mut setup: Setup,
        mut routine: F,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let measure_start = Instant::now();
        let mut runs = 0u32;
        while measure_start.elapsed() < TARGET_MEASURE || runs < 10 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((1, t0.elapsed()));
            runs += 1;
            if runs >= 5000 {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.test_mode {
            println!("test {label} ... ok (smoke)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .filter(|(iters, _)| *iters > 0)
            .map(|(iters, elapsed)| elapsed.as_nanos() as f64 / *iters as f64)
            .collect();
        if per_iter.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<50} min {:>12}  median {:>12}  mean {:>12}",
            format_ns(min),
            format_ns(median),
            format_ns(mean)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                flag if flag.starts_with("--") => {}
                filter => filters.push(filter.to_owned()),
            }
        }
        Criterion {
            test_mode,
            filters,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    fn selected(&self, label: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| label.contains(f.as_str()))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        if self.selected(&label) {
            let mut bencher = Bencher::new(self.test_mode);
            f(&mut bencher);
            bencher.report(&label);
        }
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        if self.criterion.selected(&label) {
            let mut bencher = Bencher::new(self.criterion.test_mode);
            f(&mut bencher);
            bencher.report(&label);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        if self.criterion.selected(&label) {
            let mut bencher = Bencher::new(self.criterion.test_mode);
            f(&mut bencher, input);
            bencher.report(&label);
        }
        self
    }

    pub fn finish(self) {
        let _ = self.criterion.default_sample_size;
        let _ = self.sample_size;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }

    #[test]
    fn bencher_smoke_mode_runs_once() {
        let mut bencher = Bencher::new(true);
        let mut calls = 0;
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 1);
        bencher.iter_batched(|| 5, |x| x + 1, BatchSize::LargeInput);
        assert!(bencher.samples.is_empty());
    }
}
