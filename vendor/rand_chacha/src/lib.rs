//! Offline vendored `ChaCha8Rng`: a real ChaCha8 keystream generator
//! implementing the local `rand` shim's `RngCore`/`SeedableRng` traits.
//!
//! The keystream is genuine ChaCha with 8 rounds, so statistical quality
//! matches upstream; the word-consumption order is not guaranteed to match
//! upstream `rand_chacha` bit-for-bit (no workspace test depends on that —
//! only on determinism for a fixed seed, which holds).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Deterministic ChaCha8-based generator, seeded from 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word index in `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_are_balanced() {
        // Crude avalanche check: averaged bit frequency near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u64;
        const N: u64 = 4096;
        for _ in 0..N {
            ones += rng.next_u64().count_ones() as u64;
        }
        let freq = ones as f64 / (N as f64 * 64.0);
        assert!((freq - 0.5).abs() < 0.01, "bit frequency {freq}");
    }
}
