//! Offline vendored shim of the `parking_lot` API subset this workspace
//! uses (`RwLock` and its guards), backed by `std::sync::RwLock`.
//!
//! Like real parking_lot, locks here do not poison: a panic while holding a
//! guard leaves the lock usable (std poisoning is swallowed via
//! `into_inner`).

use std::sync::TryLockError;

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn concurrent_reads_allowed() {
        let lock = RwLock::new(1);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 2);
    }
}
