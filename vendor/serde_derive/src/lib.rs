//! Offline vendored `serde_derive`: generates the vendored `serde` shim's
//! `to_value`/`from_value` impls by parsing the raw `TokenStream` directly
//! (the build environment has no `syn`/`quote`).
//!
//! Supported shapes — exactly what the workspace declares:
//! * structs with named fields,
//! * tuple structs (newtype included),
//! * enums whose variants are all unit variants.
//!
//! Generics and `#[serde(...)]` attributes are unsupported and panic with a
//! clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `idx`; returns the first index past them.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut idx: usize) -> usize {
    loop {
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                idx += 1; // the attribute body group
                if matches!(tokens.get(idx), Some(TokenTree::Group(_))) {
                    idx += 1;
                }
            }
            Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                idx += 1;
                if matches!(
                    tokens.get(idx),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    idx += 1;
                }
            }
            _ => return idx,
        }
    }
}

/// Split the tokens of a brace/paren group body on top-level commas
/// (angle-bracket depth tracked so `BTreeMap<K, V>` stays one segment).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(idx) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    idx += 1;

    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    idx += 1;

    if matches!(tokens.get(idx), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is unsupported");
    }

    let body = match tokens.get(idx) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde shim derive: expected body for `{name}`, got {other:?}"),
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();

    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            let mut fields = Vec::new();
            for segment in split_top_level_commas(&body_tokens) {
                let start = skip_attrs_and_vis(&segment, 0);
                match segment.get(start) {
                    Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
                    None => {} // trailing comma
                    other => {
                        panic!("serde shim derive: bad field in `{name}`: {other:?}")
                    }
                }
            }
            Shape::NamedStruct { name, fields }
        }
        ("struct", Delimiter::Parenthesis) => Shape::TupleStruct {
            arity: split_top_level_commas(&body_tokens).len(),
            name,
        },
        ("enum", Delimiter::Brace) => {
            let mut variants = Vec::new();
            for segment in split_top_level_commas(&body_tokens) {
                let start = skip_attrs_and_vis(&segment, 0);
                match segment.get(start) {
                    Some(TokenTree::Ident(variant)) => {
                        if matches!(segment.get(start + 1), Some(TokenTree::Group(_))) {
                            panic!(
                                "serde shim derive: enum `{name}` has non-unit variant \
                                 `{variant}` (unsupported)"
                            );
                        }
                        variants.push(variant.to_string());
                    }
                    None => {}
                    other => {
                        panic!("serde shim derive: bad variant in `{name}`: {other:?}")
                    }
                }
            }
            Shape::UnitEnum { name, variants }
        }
        _ => panic!("serde shim derive: unsupported shape for `{name}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for field in &fields {
                write!(
                    entries,
                    "(::std::string::String::from(\"{field}\"), \
                     ::serde::Serialize::to_value(&self.{field})),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ \
                         ::serde::Value::Object(::std::vec![{entries}]) \
                     }} \
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            if arity == 1 {
                // Newtype: transparent, like upstream serde.
                write!(
                    out,
                    "impl ::serde::Serialize for {name} {{ \
                         fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Serialize::to_value(&self.0) \
                         }} \
                     }}"
                )
                .unwrap();
            } else {
                let mut entries = String::new();
                for i in 0..arity {
                    write!(entries, "::serde::Serialize::to_value(&self.{i}),").unwrap();
                }
                write!(
                    out,
                    "impl ::serde::Serialize for {name} {{ \
                         fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Value::Seq(::std::vec![{entries}]) \
                         }} \
                     }}"
                )
                .unwrap();
            }
        }
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for variant in &variants {
                write!(
                    arms,
                    "{name}::{variant} => \
                     ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ \
                         match self {{ {arms} }} \
                     }} \
                 }}"
            )
            .unwrap();
        }
    }
    out.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for field in &fields {
                write!(
                    entries,
                    "{field}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(fields, \"{field}\", \"{name}\")?\
                     )?,"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ \
                         let fields = value.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}\"))?; \
                         ::std::result::Result::Ok({name} {{ {entries} }}) \
                     }} \
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            if arity == 1 {
                write!(
                    out,
                    "impl ::serde::Deserialize for {name} {{ \
                         fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             ::std::result::Result::Ok({name}(\
                                 ::serde::Deserialize::from_value(value)?)) \
                         }} \
                     }}"
                )
                .unwrap();
            } else {
                let mut entries = String::new();
                for i in 0..arity {
                    write!(entries, "::serde::Deserialize::from_value(&items[{i}])?,").unwrap();
                }
                write!(
                    out,
                    "impl ::serde::Deserialize for {name} {{ \
                         fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             let items = value.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}\"))?; \
                             if items.len() != {arity} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong arity for {name}\")); \
                             }} \
                             ::std::result::Result::Ok({name}({entries})) \
                         }} \
                     }}"
                )
                .unwrap();
            }
        }
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for variant in &variants {
                write!(
                    arms,
                    "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ \
                         let tag = value.as_str().ok_or_else(|| \
                             ::serde::Error::custom(\"expected string for {name}\"))?; \
                         match tag {{ \
                             {arms} \
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant {{other}}\"))), \
                         }} \
                     }} \
                 }}"
            )
            .unwrap();
        }
    }
    out.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
