//! Offline vendored shim of the `proptest` API subset this workspace uses:
//! the `proptest!` test macro with optional `#![proptest_config(..)]`,
//! `Strategy` with `prop_map`, range strategies, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::bool::ANY`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike upstream there is no shrinking: the first failing case is
//! reported with its case index and the test's deterministic seed, which is
//! enough to reproduce (generation is seeded per test name + case index, so
//! reruns fail on the same input).

use rand::Rng;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// The RNG handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!`-style check inside a test body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// A generator of test inputs.
///
/// `generate` replaces upstream's `new_tree`/`ValueTree` machinery; there
/// is no shrinking, so the strategy produces final values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for storage in `prop_oneof!` unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy (the element type of `prop_oneof!`).
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs options");
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bound for [`vec`]; built from ranges or an exact length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Run `body` over `config.cases` deterministic cases. Panics (failing
    /// the surrounding `#[test]`) on the first `TestCaseError`.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name);
        for case in 0..config.cases as u64 {
            let mut rng = TestRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(err) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{} failed for `{test_name}`: {}",
                    config.cases, err.message
                );
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        // Bind first so the negation applies to a plain bool, not to a
        // comparison expression (keeps clippy's neg_cmp_op_on_partial_ord
        // quiet at every call site).
        let __prop_assert_cond: bool = $cond;
        if !__prop_assert_cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: ::std::vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tuple_strategy() -> impl Strategy<Value = (u32, f64)> {
        (0u32..10, -1.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in -0.5f64..=0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-0.5..=0.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec((0u32..5, 0u32..5), 2..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((2..=5).contains(&v.len()), "len = {}", v.len());
            prop_assert!(u8::from(flag) < 2);
        }

        #[test]
        fn oneof_and_map_work(sign in prop_oneof![Just(1.0f64), Just(-1.0f64)]) {
            prop_assert!(sign == 1.0 || sign == -1.0);
            prop_assert_eq!(sign.abs(), 1.0);
        }

        #[test]
        fn helper_strategies_compose(pair in tuple_strategy().prop_map(|(a, b)| (a, b.abs()))) {
            prop_assert!(pair.1 >= 0.0);
        }
    }
}
