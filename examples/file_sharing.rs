//! A file-sharing community built directly on the public API — no
//! simulator, just the library primitives.
//!
//! Five friends share files; two outsiders set up a rating-spam clique.
//! We wire the social graph, interest profiles, and interaction tracking by
//! hand, wrap an EigenTrust engine with SocialTrust, and watch the
//! detector flag the clique while the honest community stays untouched.
//!
//! ```text
//! cargo run --release --example file_sharing
//! ```

use socialtrust::core::context::{SharedSocialContext, SocialContext};
use socialtrust::prelude::*;

const ALICE: NodeId = NodeId(0);
const BOB: NodeId = NodeId(1);
const CAROL: NodeId = NodeId(2);
const DAVE: NodeId = NodeId(3);
const ERIN: NodeId = NodeId(4);
const MALLORY: NodeId = NodeId(5);
const MALLET: NodeId = NodeId(6);

fn name(n: NodeId) -> &'static str {
    ["alice", "bob", "carol", "dave", "erin", "mallory", "mallet"][n.index()]
}

fn main() {
    // --- Social context -------------------------------------------------
    let mut ctx = SocialContext::new(7, 8);
    // The honest community is a friendship ring with shared music/movie
    // interests and steady interaction.
    let honest = [ALICE, BOB, CAROL, DAVE, ERIN];
    for w in honest.windows(2) {
        ctx.graph_mut()
            .add_relationship(w[0], w[1], Relationship::friendship());
    }
    for &member in &honest {
        let p = ctx.profile_mut(member).declared_mut();
        p.insert(InterestId(0)); // music
        p.insert(InterestId(1)); // movies
    }
    // Mallory and Mallet pose as heavily-connected buddies with no real
    // shared interests.
    for _ in 0..4 {
        ctx.graph_mut()
            .add_relationship(MALLORY, MALLET, Relationship::friendship());
    }
    ctx.profile_mut(MALLORY)
        .declared_mut()
        .insert(InterestId(6));
    ctx.profile_mut(MALLET).declared_mut().insert(InterestId(7));
    let ctx = SharedSocialContext::new(ctx);

    // --- Reputation system ----------------------------------------------
    let mut system = WithSocialTrust::new(
        EigenTrust::with_defaults(7, &[ALICE]),
        ctx.clone(),
        SocialTrustConfig::default(),
    );

    // --- A week of file sharing ------------------------------------------
    for _day in 0..7 {
        // Honest downloads: each member fetches from the next and rates
        // the service honestly.
        for w in honest.windows(2) {
            let (client, server) = (w[0], w[1]);
            system.record(Rating::with_interest(client, server, 1.0, InterestId(0)));
            ctx.write().record_request(client, server, InterestId(0));
        }
        // The spam clique: Mallory and Mallet rate each other 40 times a
        // day on "their" categories.
        for _ in 0..40 {
            system.record(
                Rating::with_interest(MALLORY, MALLET, 1.0, InterestId(7)).non_transactional(),
            );
            system.record(
                Rating::with_interest(MALLET, MALLORY, 1.0, InterestId(6)).non_transactional(),
            );
            ctx.write().record_request(MALLORY, MALLET, InterestId(7));
            ctx.write().record_request(MALLET, MALLORY, InterestId(6));
        }
    }
    system.end_cycle();

    // --- What did SocialTrust see? ----------------------------------------
    println!("== file-sharing community after one reputation cycle ==\n");
    println!("{}", CycleReport::from_decorator(&system));
    println!("by name:");
    for &((rater, ratee), w) in system.last_weights() {
        println!("  {} -> {}: x{:.6}", name(rater), name(ratee), w);
    }
    println!("\nfinal reputations:");
    let mut ranked: Vec<NodeId> = (0..7u32).map(NodeId).collect();
    ranked.sort_by(|a, b| {
        system
            .reputation(*b)
            .partial_cmp(&system.reputation(*a))
            .expect("finite")
    });
    for n in ranked {
        println!("  {:<8} {:.5}", name(n), system.reputation(n));
    }
    assert!(
        system.reputation(MALLET) < system.reputation(BOB),
        "the spam clique must not outrank honest members"
    );
    println!("\nThe clique's mutual praise was flagged (B1/B3) and damped to ~0.");
}
