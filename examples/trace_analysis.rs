//! Reproduce the paper's Section-3 trace study on a synthetic Overstock:
//! crawl the platform, measure, and re-derive observations O1–O6 — the
//! empirical basis for the suspicious behaviors B1–B4.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust::prelude::*;
use socialtrust::trace::analysis::TraceAnalysis;
use socialtrust::trace::crawler;

fn main() {
    let config = TraceConfig {
        users: 1_500,
        transactions: 30_000,
        ..TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    println!(
        "generating a synthetic Overstock: {} users, {} transactions over {} months…",
        config.users, config.transactions, config.months
    );
    let platform = generate(&config, &mut rng);

    // Crawl it the way the paper did: BFS from a seed over friend lists
    // and business contact lists.
    let discovered = crawl(&platform, UserId::from(0u32), None);
    println!(
        "crawl from seed user: discovered {}/{} users ({:.0}% coverage)\n",
        discovered.len(),
        platform.user_count(),
        100.0 * crawler::coverage(&platform, UserId::from(0u32))
    );

    let analysis = TraceAnalysis::new(&platform);

    println!("O1: reputation ↔ business-network size");
    println!(
        "    C = {:.3}   (paper: 0.996 — high-reputed users attract more buyers)",
        analysis.business_reputation_correlation()
    );

    println!("O2: reputation ↔ personal-network size");
    println!(
        "    C = {:.3}   (paper: 0.092 — a low-reputed user can still have many friends)",
        analysis.personal_reputation_correlation()
    );

    println!("O3/O4: ratings by social distance");
    for s in analysis.rating_stats_by_distance() {
        println!(
            "    {} hop(s): avg value {:+.2}, avg frequency {:.2}",
            s.distance, s.avg_rating_value, s.avg_rating_count
        );
    }

    println!("O5: purchases by category rank");
    println!(
        "    top-3 categories hold {:.0}% of purchases   (paper: ≈ 88%)",
        100.0 * analysis.top3_category_share()
    );

    println!("O6: transactions by interest similarity");
    println!(
        "    {:.0}% of transactions between pairs with > 30% similarity   (paper: 60%)",
        100.0 * analysis.share_transactions_above_similarity(0.3)
    );

    println!("\nFrom these, the paper derives the suspicious behaviors:");
    println!("  B1: distant pairs exchanging frequent high ratings");
    println!("  B2: frequent high ratings to a low-reputed, socially-close node");
    println!("  B3: frequent high ratings despite near-zero interest overlap");
    println!("  B4: frequent LOW ratings to a high-overlap competitor");
}
