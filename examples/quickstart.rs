//! Quickstart: protect EigenTrust with SocialTrust in a collusion-ridden
//! P2P network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use socialtrust::prelude::*;

fn main() {
    // The paper's experimental setup, shrunk for a quick demo: an
    // unstructured P2P network with pre-trusted nodes, normal nodes, and a
    // block of colluders running the pair-wise collusion model.
    let scenario = ScenarioConfig::small()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6)
        .with_cycles(15);
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();

    println!("== SocialTrust quickstart ==");
    println!(
        "{} nodes, {} colluders (PCM, B = 0.6), {} simulation cycles\n",
        scenario.nodes,
        colluders.len(),
        scenario.sim_cycles
    );

    for kind in [
        ReputationKind::EigenTrust,
        ReputationKind::EigenTrustWithSocialTrust,
    ] {
        let result = run_scenario(&scenario, kind, 42);
        println!("{kind}:");
        println!(
            "  colluder mean reputation: {:.5}",
            result.final_summary.mean_reputation(&colluders)
        );
        println!(
            "  normal   mean reputation: {:.5}",
            result.final_summary.mean_reputation(&normals)
        );
        println!(
            "  requests served by colluders: {:.1}%",
            result.percent_requests_to_colluders()
        );
        if kind.has_socialtrust() {
            println!(
                "  suspicions flagged: {}, ratings adjusted: {}",
                result.suspicions_flagged, result.ratings_adjusted
            );
        }
        println!();
    }
    println!("SocialTrust re-scales ratings from suspected colluders (behaviors B1-B4),");
    println!("so the colluders' mutual praise stops buying them reputation.");
}
