//! Play the attacker: try every collusion strategy from the paper against
//! a SocialTrust-protected network and watch each one fail.
//!
//! ```text
//! cargo run --release --example collusion_attack
//! ```

use socialtrust::prelude::*;

fn attack(label: &str, scenario: &ScenarioConfig) {
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();
    let unprotected = run_scenario(scenario, ReputationKind::EigenTrust, 7);
    let protected = run_scenario(scenario, ReputationKind::EigenTrustWithSocialTrust, 7);
    println!("--- {label} ---");
    println!(
        "  plain EigenTrust:      colluders {:.5}  (normals {:.5}), {:>5.1}% of requests",
        unprotected.final_summary.mean_reputation(&colluders),
        unprotected.final_summary.mean_reputation(&normals),
        unprotected.percent_requests_to_colluders(),
    );
    println!(
        "  with SocialTrust:      colluders {:.5}  (normals {:.5}), {:>5.1}% of requests",
        protected.final_summary.mean_reputation(&colluders),
        protected.final_summary.mean_reputation(&normals),
        protected.percent_requests_to_colluders(),
    );
    println!(
        "  -> attack {}\n",
        if protected.final_summary.mean_reputation(&colluders)
            < protected.final_summary.mean_reputation(&normals)
        {
            "DEFEATED"
        } else {
            "SUCCEEDED"
        }
    );
}

fn main() {
    println!("== the attacker's playbook vs SocialTrust ==\n");
    let base = ScenarioConfig::small()
        .with_colluder_behavior(0.6)
        .with_cycles(15);

    // 1. Pair up and praise each other at high frequency.
    attack(
        "PCM: pair-wise mutual praise (20 ratings/query cycle)",
        &base.clone().with_collusion(CollusionModel::PairWise),
    );

    // 2. Organize a boost ring around a few figureheads.
    attack(
        "MCM: boosters pump a few boosted figureheads",
        &base.clone().with_collusion(CollusionModel::MultiNode),
    );

    // 3. Have the figureheads rate the boosters back to launder trust.
    attack(
        "MMM: mutual amplification loop",
        &base.clone().with_collusion(CollusionModel::MultiMutual),
    );

    // 4. Bribe the pre-trusted nodes.
    attack(
        "PCM + compromised pre-trusted nodes",
        &base
            .clone()
            .with_collusion(CollusionModel::PairWise)
            .with_compromised_pretrusted(2),
    );

    // 5. Falsify the social profile to look like a normal pair.
    attack(
        "PCM + falsified relationships and interests (Section 5.8)",
        &base
            .clone()
            .with_collusion(CollusionModel::PairWise)
            .with_falsified_social_info(true),
    );

    // 6. Keep a "moderate" social distance to dodge the closeness extremes.
    attack(
        "PCM at engineered social distance 2 (Figure 20)",
        &base
            .clone()
            .with_collusion(CollusionModel::PairWise)
            .with_colluder_distance(2),
    );
}
