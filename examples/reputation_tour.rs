//! A tour of every reputation engine in the workspace, fed the *same*
//! rating stream: an honest marketplace with one colluding pair.
//!
//! Shows how each design reacts to the identical evidence:
//! * `SimpleAverage` — swallowed whole by rating frequency;
//! * `eBay` — dedup caps the damage per cycle, colluders still gain;
//! * `EigenTrust` — trust-weighting amplifies whoever is already up;
//! * `PowerTrust` — dynamic power nodes, capturable by the pair;
//! * `FeedbackSimilarity` — consensus credibility, blind to isolated
//!   cliques;
//! * `EigenTrust+SocialTrust` — reads the social layer and shuts the
//!   collusion down.
//!
//! ```text
//! cargo run --release --example reputation_tour
//! ```

use socialtrust::core::context::{SharedSocialContext, SocialContext};
use socialtrust::prelude::*;

const N: usize = 10;
const COLLUDER_A: NodeId = NodeId(8);
const COLLUDER_B: NodeId = NodeId(9);

/// One cycle of identical traffic for any engine: honest nodes 0-7 rate
/// each other round-robin (mostly good service), the colluders blast each
/// other, and each colluder also serves one honest request *well* — smart
/// colluders keep their organic record clean, so nothing in the rating
/// values alone betrays them.
fn feed(sys: &mut dyn ReputationSystem, cycle: usize) {
    for i in 0..8u32 {
        let server = NodeId((i + 1) % 8);
        let value = if (i as usize + cycle).is_multiple_of(5) {
            -1.0
        } else {
            1.0
        };
        sys.record(Rating::new(NodeId(i), server, value));
    }
    for _ in 0..25 {
        sys.record(Rating::new(COLLUDER_A, COLLUDER_B, 1.0).non_transactional());
        sys.record(Rating::new(COLLUDER_B, COLLUDER_A, 1.0).non_transactional());
    }
    // Organic contact with the colluders: good service, honest ratings —
    // the collusion is pure reputation farming, not bad service. The
    // colluders also consume honest services themselves (and rate them),
    // like any real peer.
    sys.record(Rating::new(NodeId(0), COLLUDER_A, 1.0));
    sys.record(Rating::new(NodeId(1), COLLUDER_B, 1.0));
    sys.record(Rating::new(COLLUDER_A, NodeId(2), 1.0));
    sys.record(Rating::new(COLLUDER_B, NodeId(3), 1.0));
    sys.end_cycle();
}

fn context() -> SharedSocialContext {
    let mut ctx = SocialContext::new(N, 10);
    // Honest ring with shared interests and mutual interaction.
    for i in 0..8u32 {
        let next = NodeId((i + 1) % 8);
        ctx.graph_mut()
            .add_relationship(NodeId(i), next, Relationship::friendship());
        ctx.record_interaction(NodeId(i), next, 2.0);
        ctx.profile_mut(NodeId(i))
            .declared_mut()
            .insert(InterestId(0));
    }
    // The colluders: tight multi-relationship pair, disjoint interests.
    for _ in 0..4 {
        ctx.graph_mut()
            .add_relationship(COLLUDER_A, COLLUDER_B, Relationship::friendship());
    }
    ctx.record_interaction(COLLUDER_A, COLLUDER_B, 50.0);
    ctx.record_interaction(COLLUDER_B, COLLUDER_A, 50.0);
    ctx.profile_mut(COLLUDER_A)
        .declared_mut()
        .insert(InterestId(5));
    ctx.profile_mut(COLLUDER_B)
        .declared_mut()
        .insert(InterestId(6));
    SharedSocialContext::new(ctx)
}

fn main() {
    println!("== one rating stream, six reputation engines ==\n");
    let mut engines: Vec<Box<dyn ReputationSystem>> = vec![
        Box::new(SimpleAverage::new(N)),
        Box::new(EBayModel::new(N)),
        Box::new(EigenTrust::with_defaults(N, &[NodeId(0)])),
        Box::new(PowerTrust::with_defaults(N)),
        Box::new(FeedbackSimilarity::new(N)),
        Box::new(WithSocialTrust::new(
            EigenTrust::with_defaults(N, &[NodeId(0)]),
            context(),
            SocialTrustConfig::default(),
        )),
    ];
    println!(
        "{:<26} {:>15} {:>14} {:>11}",
        "engine", "colluder mean", "honest mean", "verdict"
    );
    for engine in &mut engines {
        for cycle in 0..10 {
            feed(engine.as_mut(), cycle);
        }
        let reps = engine.reputations();
        let colluders = (reps[COLLUDER_A.index()] + reps[COLLUDER_B.index()]) / 2.0;
        let honest = reps[..8].iter().sum::<f64>() / 8.0;
        let verdict = if colluders <= honest {
            "resists"
        } else {
            "subverted"
        };
        println!(
            "{:<26} {:>15.5} {:>14.5} {:>11}",
            engine.name(),
            colluders,
            honest,
            verdict
        );
    }
    println!(
        "\nOnly the social layer sees *why* the pair's ratings are anomalous:\n\
         two heavily-interacting, multi-linked nodes with zero interest overlap,\n\
         rating each other far above the system's normal frequency (B1/B2/B3)."
    );
}
