//! SocialTrust in its distributed deployment (Section 4.3): per-node
//! resource managers collect ratings, track `t⁺(i,j)` / `t⁻(i,j)`, and
//! exchange social information when a suspicion crosses manager
//! boundaries. Results are identical to the centralized deployment; the
//! interesting part is the overhead accounting.
//!
//! ```text
//! cargo run --release --example distributed_managers
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust::core::manager::ManagedSocialTrust;
use socialtrust::prelude::*;
use socialtrust::sim::build::SimWorld;
use socialtrust::sim::engine;

fn main() {
    let scenario = ScenarioConfig::small()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.6)
        .with_cycles(12);

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let world = SimWorld::build(&scenario, &mut rng);

    // 8 resource managers share responsibility for the 40 nodes.
    let manager_count = 8;
    let mut system = ManagedSocialTrust::new(
        EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids()),
        world.ctx.clone(),
        SocialTrustConfig::default(),
        manager_count,
    );

    println!(
        "== distributed SocialTrust: {} managers over {} nodes ==",
        manager_count, scenario.nodes
    );
    println!(
        "manager load (nodes per manager): {:?}\n",
        system.managers().load()
    );

    let result = engine::run(&world, &scenario, &mut system, &mut rng);

    let stats = system.stats();
    println!("after {} simulation cycles:", scenario.sim_cycles);
    println!("  ratings routed to managers:     {}", stats.ratings_routed);
    println!(
        "  cross-manager info requests:    {}",
        stats.info_request_messages
    );
    println!(
        "  co-managed suspicions (free):   {}",
        stats.local_suspicions
    );
    println!(
        "  overhead: {:.4} info messages per routed rating",
        stats.info_request_messages as f64 / stats.ratings_routed as f64
    );

    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();
    println!(
        "\ncolluder mean reputation {:.5} vs normal {:.5} — collusion suppressed: {}",
        result.final_summary.mean_reputation(&colluders),
        result.final_summary.mean_reputation(&normals),
        result.final_summary.mean_reputation(&colluders)
            < result.final_summary.mean_reputation(&normals)
    );

    // Centralized reference: identical reputations, zero messages.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let world2 = SimWorld::build(&scenario, &mut rng);
    let mut central = WithSocialTrust::new(
        EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids()),
        world2.ctx.clone(),
        SocialTrustConfig::default(),
    );
    let central_result = engine::run(scenario_world(&world2), &scenario, &mut central, &mut rng);
    assert_eq!(
        result.final_summary, central_result.final_summary,
        "distributed deployment must be result-identical to centralized"
    );
    println!("\ncentralized reference run produced bit-identical reputations ✓");
}

/// Tiny helper so the example reads naturally (`engine::run` takes the
/// world by reference).
fn scenario_world(world: &SimWorld) -> &SimWorld {
    world
}
